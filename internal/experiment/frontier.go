package experiment

import (
	"fmt"

	"tscout/internal/archive"
	"tscout/internal/autopilot"
	"tscout/internal/dbms"
	"tscout/internal/model"
	"tscout/internal/sim"
	"tscout/internal/tscout"
	"tscout/internal/wal"
	"tscout/internal/workload"
)

// FrontierRow is one point on the error-vs-overhead frontier: a sampling
// policy's accuracy (held-out per-template error of models trained only
// on the data that policy collected) against its cost (throughput loss
// vs collection-off).
type FrontierRow struct {
	// Policy names the sampling policy ("fixed 1%", ..., "autopilot").
	Policy string
	// ThroughputTPS is the run's transaction throughput.
	ThroughputTPS float64
	// OverheadPct is the throughput loss vs the collection-off baseline.
	OverheadPct float64
	// TrainingRows is how many archive rows the policy collected.
	TrainingRows int64
	// ErrorUS is the per-template held-out error (µs) of the online
	// models trained on the policy's data, evaluated on a common
	// full-rate reference set.
	ErrorUS float64
	// FinalRates is the per-subsystem sampling rate at the end of the
	// run (fixed policies: the configured rate throughout).
	FinalRates [tscout.NumSubsystems]int
	// Epochs and DriftEvents report controller activity (zero for fixed
	// policies).
	Epochs      int64
	DriftEvents int64
}

// frontierModel is the learner shared by every frontier policy: the same
// windowed-forest family the autopilot refreshes online, so the only
// variable across rows is the data each policy collected.
func frontierModel() model.OnlineModel {
	return &model.WindowedForest{Trees: 8, RefreshTrees: 2, MaxDepth: 8, Seed: 7}
}

// Frontier runs the error-vs-overhead frontier: fixed sampling at 1%,
// 10%, and 100% against the autopilot's error-driven adaptive policy, on
// the same seeded workload. Every policy trains the same online model
// family and is scored on the same full-rate reference test set; the
// autopilot additionally pays its controller ticks inside the measured
// run, so its overhead is honest.
//
// The frontier shape this reproduces: fixed 100% buys low error at high
// overhead, fixed 1% the reverse, and the autopilot takes both — it
// samples at 100% only until its models converge, then throttles to the
// floor, so its models train on an early full-rate flood while most of
// the run executes at near-zero collection cost.
func Frontier(sc Scale) ([]FrontierRow, error) {
	const seed = 411
	profile := defaultProfile()
	// TPC-C: feature-dependent OU costs (order lines, payment amounts), so
	// model error actually responds to how much data a policy collected —
	// YCSB's near-constant per-template costs would flatten the error axis.
	gen := func() workload.Generator { return workload.Generator(tpccGen(4)) }

	// Common reference test set: a full-rate run on a held-out seed.
	ref, err := collectOnline(profile, gen(), 20, sc.OnlineTxns, 100, seed+999)
	if err != nil {
		return nil, err
	}
	test := ref.Points

	// Collection-off baseline for the overhead axis.
	baseRun, _, err := frontierRun(profile, gen(), sc, 0, false, seed)
	if err != nil {
		return nil, err
	}
	baseTPS := baseRun.Result.ThroughputTPS

	var rows []FrontierRow
	for _, rate := range []int{1, 10, 100} {
		run, set, err := frontierRun(profile, gen(), sc, rate, false, seed)
		if err != nil {
			return nil, err
		}
		row := FrontierRow{
			Policy:        fmt.Sprintf("fixed %d%%", rate),
			ThroughputTPS: run.Result.ThroughputTPS,
			OverheadPct:   overheadPct(baseTPS, run.Result.ThroughputTPS),
			TrainingRows:  run.Result.TrainingPoints,
			ErrorUS:       set.AvgAbsErrorByTemplate(test),
		}
		for i := range row.FinalRates {
			row.FinalRates[i] = rate
		}
		rows = append(rows, row)
	}

	run, set, err := frontierRun(profile, gen(), sc, 100, true, seed)
	if err != nil {
		return nil, err
	}
	st := run.Result.Processor.Autopilot
	row := FrontierRow{
		Policy:        "autopilot",
		ThroughputTPS: run.Result.ThroughputTPS,
		OverheadPct:   overheadPct(baseTPS, run.Result.ThroughputTPS),
		TrainingRows:  run.Result.TrainingPoints,
		ErrorUS:       set.AvgAbsErrorByTemplate(test),
		Epochs:        st.Epochs,
	}
	for _, sub := range tscout.AllSubsystems {
		row.FinalRates[sub] = st.Rates[sub]
		row.DriftEvents += st.DriftEvents[sub]
	}
	rows = append(rows, row)
	return rows, nil
}

func overheadPct(base, tps float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - tps) / base * 100
}

// frontierChunk is the mini-batch size used to stream a fixed policy's
// archive through the online learner — the controller's effective batch
// granularity.
const frontierChunk = 512

// frontierRun is one measured policy run: an instrumented server with
// the segment writer as sink, drain parallelism 1 (bit-reproducible
// collection), and — for the autopilot policy — the controller ticking
// from the driver's OnDrain hook, inside the measured run. It returns
// the run and the online model set trained on the policy's data.
//
// Fixed policies stream their archive through the identical learner
// after the run (same mini-batch cadence the controller uses), so the
// frontier isolates the sampling policy: same workload, same seed, same
// models — only the collected data differs.
func frontierRun(profile sim.HardwareProfile, gen workload.Generator, sc Scale,
	rate int, auto bool, seed int64) (*onlineRun, *model.OnlineSet, error) {
	// Short segments so seals land every few controller epochs: at the
	// default 4096-row segments the controller would starve until the
	// final flush and never converge inside the measured run.
	ac := newArchiveCapture()
	ac.w = archive.NewWriterSize(&ac.buf, frontierChunk)
	srv, err := dbms.NewServer(dbms.Config{
		Profile:              profile,
		Seed:                 seed,
		NoiseSigma:           noiseSigma,
		Instrument:           true,
		Mode:                 tscout.KernelContinuous,
		DisableFeedback:      true,
		ProcessorParallelism: 1,
		Sink:                 ac.w,
		WAL:                  wal.Config{GroupSize: 32, FlushIntervalNS: 200_000},
	})
	if err != nil {
		return nil, nil, err
	}
	if err := gen.Setup(srv); err != nil {
		return nil, nil, err
	}
	srv.TS.Sampler().SetAllRates(rate)

	wcfg := workload.Config{
		Terminals: 20, Transactions: sc.OnlineTxns, Seed: seed,
		FinalDrain: true,
		// A tighter poll period than the 100µs default: the frontier runs
		// span only a few virtual milliseconds, and the controller needs
		// tens of epochs inside the run to converge and throttle while
		// throughput is still being measured. Applied to every policy so
		// drain cost stays identical across rows.
		ProcessorPollNS: 25_000,
	}
	var ctrl *autopilot.Controller
	if auto {
		ctrl = autopilot.New(srv.TS, ac.w, autopilot.Config{
			HWContext: hwContext(profile),
			NewModel:  frontierModel,
			// Scaled to the short run: decide from ~100 scored samples.
			MinSamples: 100,
		})
		wcfg.OnDrain = ctrl.Hook()
	}
	res, err := workload.Run(srv, gen, wcfg)
	if err != nil {
		return nil, nil, err
	}
	if err := ac.w.Flush(); err != nil {
		return nil, nil, err
	}

	if auto {
		// Absorb the final flushed tail, then hand back the models the
		// controller trained during the run.
		ctrl.Tick()
		return &onlineRun{Result: res}, ctrl.ModelSet(), nil
	}

	set := model.NewOnlineSet(frontierModel)
	if res.TrainingPoints > 0 {
		r, err := archive.NewReader(ac.buf.Bytes())
		if err != nil {
			return nil, nil, err
		}
		pts, err := model.FromArchive(r, hwContext(profile))
		if err != nil {
			return nil, nil, err
		}
		for lo := 0; lo < len(pts); lo += frontierChunk {
			hi := lo + frontierChunk
			if hi > len(pts) {
				hi = len(pts)
			}
			set.ObservePrequential(pts[lo:hi], nil)
			if err := set.Refit(); err != nil {
				return nil, nil, err
			}
		}
	}
	return &onlineRun{Result: res}, set, nil
}
