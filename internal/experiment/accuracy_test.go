package experiment

import (
	"testing"

	"tscout/internal/tscout"
)

// quickAcc trims the accuracy experiments to CI scale.
func quickAcc() Scale {
	sc := Quick
	sc.OnlineTxns = 1200
	sc.ConvergenceSizes = []int{150, 400, 1000}
	return sc
}

func rowsBySub(rows []SubsystemRow, scenario string) map[tscout.SubsystemID]SubsystemRow {
	out := map[tscout.SubsystemID]SubsystemRow{}
	for _, r := range rows {
		if scenario == "" || r.Scenario == scenario {
			out[r.Subsystem] = r
		}
	}
	return out
}

func TestFig2Shape(t *testing.T) {
	rows, err := Fig2(quickAcc())
	if err != nil {
		t.Fatal(err)
	}
	m := rowsBySub(rows, "")
	if len(m) != 4 {
		t.Fatalf("rows: %+v", rows)
	}
	// Paper Fig. 2: online data improves every subsystem; the WAL
	// subsystems (log serializer 93%, disk writer 77%) improve far more
	// than the execution engine (9.5%).
	for sub, r := range m {
		if r.ReductionPct <= 0 {
			t.Fatalf("%v: online data must improve accuracy: %+v", sub, r)
		}
	}
	logSer := m[tscout.SubsystemLogSerializer].ReductionPct
	diskWr := m[tscout.SubsystemDiskWriter].ReductionPct
	ee := m[tscout.SubsystemExecutionEngine].ReductionPct
	if !(logSer > ee && diskWr > ee) {
		t.Fatalf("WAL subsystems must improve most: logser=%.1f diskwr=%.1f ee=%.1f",
			logSer, diskWr, ee)
	}
	if logSer < 40 {
		t.Fatalf("log serializer reduction too small: %.1f%% (paper: 93%%)", logSer)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(quickAcc())
	if err != nil {
		t.Fatal(err)
	}
	larger := rowsBySub(rows, "Larger HW")
	smaller := rowsBySub(rows, "Smaller HW")
	if len(larger) != 4 || len(smaller) != 4 {
		t.Fatalf("rows: %+v", rows)
	}
	// Paper Fig. 7d: the disk writer improves dramatically in both
	// migrations (98% and 86%) because its behavior is hardware-bound
	// and it has no hardware context features.
	for _, m := range []map[tscout.SubsystemID]SubsystemRow{larger, smaller} {
		dw := m[tscout.SubsystemDiskWriter]
		if dw.ReductionPct < 40 {
			t.Fatalf("disk writer must improve heavily after migration: %+v", dw)
		}
		ls := m[tscout.SubsystemLogSerializer]
		if ls.ReductionPct <= 0 {
			t.Fatalf("log serializer must improve: %+v", ls)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	rows, err := Fig9(quickAcc())
	if err != nil {
		t.Fatal(err)
	}
	// Group by subsystem.
	bySub := map[tscout.SubsystemID][]ConvergenceRow{}
	for _, r := range rows {
		bySub[r.Subsystem] = append(bySub[r.Subsystem], r)
	}
	// Paper Fig. 9c/9d: the WAL subsystems converge below the offline
	// baseline once enough online data is available. The log serializer
	// shows the paper's dramatic gap (group-commit record batching the
	// runners never see); the disk writer's gap is smaller here because
	// the simulated device's fixed latency dominates flush time
	// (EXPERIMENTS.md records the magnitude deviation).
	for sub, minReduction := range map[tscout.SubsystemID]float64{
		tscout.SubsystemLogSerializer: 0.5,
		tscout.SubsystemDiskWriter:    0.9,
	} {
		curve := bySub[sub]
		if len(curve) == 0 {
			t.Fatalf("no curve for %v", sub)
		}
		last := curve[len(curve)-1]
		if last.OnlineUS >= last.OfflineUS*minReduction {
			t.Fatalf("%v: convergence too weak: online=%.2f offline=%.2f (need < %.0f%%)",
				sub, last.OnlineUS, last.OfflineUS, minReduction*100)
		}
	}
	// Error must not grow as data grows (allowing small non-monotonic
	// wiggles, which the paper also observes in Fig. 10a).
	for sub, curve := range bySub {
		first, last := curve[0], curve[len(curve)-1]
		if last.OnlineUS > first.OnlineUS*1.5 {
			t.Fatalf("%v: error grew with data: first=%.1f last=%.1f", sub, first.OnlineUS, last.OnlineUS)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("HTAP collection is slow")
	}
	rows, err := Fig10(quickAcc())
	if err != nil {
		t.Fatal(err)
	}
	bySub := map[tscout.SubsystemID][]ConvergenceRow{}
	for _, r := range rows {
		bySub[r.Subsystem] = append(bySub[r.Subsystem], r)
	}
	// Same trends as Fig. 9 for the WAL subsystems under HTAP.
	for _, sub := range []tscout.SubsystemID{tscout.SubsystemLogSerializer, tscout.SubsystemDiskWriter} {
		curve := bySub[sub]
		if len(curve) == 0 {
			t.Fatalf("no curve for %v", sub)
		}
		last := curve[len(curve)-1]
		if last.OnlineUS >= last.OfflineUS {
			t.Fatalf("%v: online must beat offline under HTAP: %+v", sub, last)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := Fig11(quickAcc())
	if err != nil {
		t.Fatal(err)
	}
	// Collapse to the best reduction per terminal count.
	best := map[int]float64{}
	offline := map[int]float64{}
	for _, r := range rows {
		if r.ReductionPct > best[r.Terminals] {
			best[r.Terminals] = r.ReductionPct
		}
		offline[r.Terminals] = r.OfflineUS
	}
	// Paper Fig. 11: offline models degrade with more clients
	// (contention they never saw). In the paper the online reduction
	// therefore grows from ~30-47% at 2 terminals to 98-99% at 20; in
	// this reproduction even two clients activate the contention model
	// the runners miss, so the reduction is already high at 2 terminals
	// and stays high across the sweep (EXPERIMENTS.md Fig. 11 records
	// ~92-94% everywhere). Assert the mechanism, not the paper's ramp:
	// offline error must grow with contention, and online data must
	// remove most of it at every terminal count — including 20, where
	// the offline model is at its worst.
	if !(offline[20] > offline[2]) {
		t.Fatalf("offline error must grow with contention: %v", offline)
	}
	for _, terminals := range []int{2, 5, 10, 20} {
		if best[terminals] < 50 {
			t.Fatalf("reduction at %d terminals too small: %.1f%% (want most of the offline error removed): %v",
				terminals, best[terminals], best)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("seven scenarios")
	}
	sc := quickAcc()
	rows, err := Fig12(sc)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := map[string]bool{}
	for _, r := range rows {
		scenarios[r.Scenario] = true
	}
	if len(scenarios) != 7 {
		t.Fatalf("expected 7 scenarios: %v", scenarios)
	}
	// Count how often online data helps: the paper's summary is that it
	// helps in most scenario/subsystem combinations, with regressions in
	// the hardware-migration cells that lack context features (the
	// paper's own Fig. 12d disk writer worsens 2x on Larger HW).
	helped, hurt := 0, 0
	for _, r := range rows {
		if r.OnlineUS <= r.OfflineUS {
			helped++
		} else {
			hurt++
		}
	}
	if helped < hurt {
		t.Fatalf("online data must help in most cells: helped=%d hurt=%d", helped, hurt)
	}
	// The log serializer improves in the majority of scenarios
	// (Fig. 12c), and strongly in the database-size scenarios where the
	// group-commit batching gap dominates.
	lsImproved, lsTotal := 0, 0
	for _, r := range rows {
		if r.Subsystem != tscout.SubsystemLogSerializer {
			continue
		}
		lsTotal++
		if r.ReductionPct > 0 {
			lsImproved++
		}
		if (r.Scenario == "Larger DB" || r.Scenario == "Smaller DB") && r.ReductionPct < 40 {
			t.Fatalf("log serializer must improve strongly in %q: %+v", r.Scenario, r)
		}
	}
	if lsImproved*2 < lsTotal {
		t.Fatalf("log serializer must improve in a majority of scenarios: %d/%d", lsImproved, lsTotal)
	}
}
