package experiment

import "testing"

func TestAblationNoise(t *testing.T) {
	sc := quickAcc()
	rows, err := AblationNoise(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Sigma != 0 {
		t.Fatalf("rows: %+v", rows)
	}
	// The offline/online gap is structural: it must persist at sigma=0.
	zero := rows[0]
	if zero.LogSerOnlineUS >= zero.LogSerOfflineUS {
		t.Fatalf("batching gap must exist without noise: %+v", zero)
	}
	if zero.LogSerOfflineUS < 2*zero.LogSerOnlineUS {
		t.Fatalf("gap at sigma=0 too small: %+v", zero)
	}
	// Online error floors must grow with noise.
	last := rows[len(rows)-1]
	if last.LogSerOnlineUS <= zero.LogSerOnlineUS {
		t.Fatalf("noise must raise the online error floor: %+v vs %+v", last, zero)
	}
}

func TestAblationGroupCommit(t *testing.T) {
	sc := quickAcc()
	rows, err := AblationGroupCommit(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].GroupSize != 1 {
		t.Fatalf("rows: %+v", rows)
	}
	sync, big := rows[0], rows[len(rows)-1]
	// Larger groups batch far more records per flush (the effect offline
	// runners never see, Figs. 2/9)...
	if big.MeanBatchRecords < 4*sync.MeanBatchRecords {
		t.Fatalf("batch sizes must grow: %+v vs %+v", big, sync)
	}
	// ...at a commit tail-latency cost (clients wait for the window).
	if big.P99US <= sync.P99US {
		t.Fatalf("group commit must cost tail latency: %+v vs %+v", big, sync)
	}
	// Batch sizes must grow monotonically across the sweep.
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanBatchRecords < rows[i-1].MeanBatchRecords {
			t.Fatalf("batching must grow with the policy: %+v", rows)
		}
	}
}

func TestAblationSamplingGranularity(t *testing.T) {
	sc := quickAcc()
	rows, err := AblationSamplingGranularity(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %+v", rows)
	}
	off, ten, full := rows[0], rows[1], rows[2]
	if !(off.ThroughputTPS > ten.ThroughputTPS && ten.ThroughputTPS > full.ThroughputTPS) {
		t.Fatalf("throughput must degrade with collection volume: %.0f / %.0f / %.0f",
			off.ThroughputTPS, ten.ThroughputTPS, full.ThroughputTPS)
	}
	// The recommended 10% setting must recover most of the full-rate loss.
	lossAt10 := off.ThroughputTPS - ten.ThroughputTPS
	lossAt100 := off.ThroughputTPS - full.ThroughputTPS
	if lossAt10 > lossAt100/2 {
		t.Fatalf("10%% sampling must cost far less than 100%%: %.0f vs %.0f", lossAt10, lossAt100)
	}
}

func TestAblationExternalCollection(t *testing.T) {
	sc := quickAcc()
	rows, err := AblationExternalCollection(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %+v", rows)
	}
	none, internal, external := rows[0], rows[1], rows[2]
	// §2.2: EXPLAIN-per-query external collection must cost more than
	// TScout's internal markers, even at a 100% sampling rate.
	if !(external.ThroughputTPS < internal.ThroughputTPS) {
		t.Fatalf("external collection must be slower than internal: %+v vs %+v",
			external, internal)
	}
	if !(internal.ThroughputTPS < none.ThroughputTPS) {
		t.Fatalf("internal collection is not free: %+v vs %+v", internal, none)
	}
}
