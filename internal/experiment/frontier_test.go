package experiment

import (
	"testing"
)

// TestFrontierShape asserts the error-vs-overhead frontier's headline:
// the autopilot Pareto-dominates every fixed sampling rate — no fixed
// policy beats it on both axes, it tracks fixed-100%'s accuracy while
// paying a fraction of the overhead, and it ends the run throttled.
func TestFrontierShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	sc := Quick
	sc.OnlineTxns = 1200
	rows, err := Frontier(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %+v", rows)
	}
	byPolicy := map[string]FrontierRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	f1, f100 := byPolicy["fixed 1%"], byPolicy["fixed 100%"]
	auto, ok := byPolicy["autopilot"]
	if !ok {
		t.Fatalf("no autopilot row: %+v", rows)
	}

	// The fixed frontier itself must slope the right way: more sampling,
	// more data, less error, more overhead.
	if !(f100.TrainingRows > f1.TrainingRows) {
		t.Fatalf("fixed rows not monotone: %+v", rows)
	}
	if !(f100.ErrorUS < f1.ErrorUS) {
		t.Fatalf("fixed 100%% should out-predict fixed 1%%: %+v", rows)
	}

	// Pareto dominance: no fixed policy beats the autopilot on both axes.
	for _, r := range []FrontierRow{f1, byPolicy["fixed 10%"], f100} {
		if r.ErrorUS < auto.ErrorUS && r.OverheadPct < auto.OverheadPct {
			t.Fatalf("%s dominates autopilot: %+v vs %+v", r.Policy, r, auto)
		}
	}
	// And the strong form of the claim: near-full-rate accuracy at a
	// fraction of full-rate overhead.
	if auto.ErrorUS > f100.ErrorUS*1.5 {
		t.Fatalf("autopilot error %.2fµs too far above full sampling %.2fµs",
			auto.ErrorUS, f100.ErrorUS)
	}
	if auto.OverheadPct > f100.OverheadPct*0.75 {
		t.Fatalf("autopilot overhead %.2f%% not clearly below full sampling %.2f%%",
			auto.OverheadPct, f100.OverheadPct)
	}

	// The controller actually ran and ended throttled on the subsystems
	// this workload exercises.
	if auto.Epochs == 0 {
		t.Fatalf("controller never ticked: %+v", auto)
	}
	throttled := false
	for _, r := range auto.FinalRates {
		if r >= 0 && r < 100 {
			throttled = true
		}
	}
	if !throttled {
		t.Fatalf("autopilot never throttled: %+v", auto)
	}
}
