package experiment

import (
	"tscout/internal/model"
	"tscout/internal/sim"
	"tscout/internal/tscout"
	"tscout/internal/workload"
)

// SubsystemRow is one bar of a per-subsystem accuracy figure.
type SubsystemRow struct {
	Subsystem tscout.SubsystemID
	Scenario  string
	// OfflineUS and OnlineUS are average absolute error per query
	// template in microseconds for offline-only vs offline+online
	// training data.
	OfflineUS float64
	OnlineUS  float64
	// ReductionPct is the paper's headline metric.
	ReductionPct float64
}

// Fig2 reproduces Figure 2 (offline vs online training data): models
// trained with offline runner data alone vs augmented with online TPC-C
// data, evaluated on a 20% held-out set of query templates. The paper's
// shape: WAL subsystems improve most (93%, 77%), networking ~53%, the
// execution engine least (~9.5%).
func Fig2(sc Scale) ([]SubsystemRow, error) {
	offline, err := collectOffline(defaultProfile(), 21, sc)
	if err != nil {
		return nil, err
	}
	online, err := collectOnline(defaultProfile(), tpccGen(2), 16, sc.OnlineTxns, 100, 22)
	if err != nil {
		return nil, err
	}
	trainOn, testOn := splitPerSubsystem(online.Points, 0.2, 23)
	errs, err := evalSubsystems(offline, trainOn, testOn)
	if err != nil {
		return nil, err
	}
	var rows []SubsystemRow
	for _, sub := range tscout.AllSubsystems {
		rows = append(rows, SubsystemRow{
			Subsystem: sub, Scenario: "tpcc-holdout-20pct",
			OfflineUS:    errs.OfflineUS[sub],
			OnlineUS:     errs.OnlineUS[sub],
			ReductionPct: reduction(errs.OfflineUS[sub], errs.OnlineUS[sub]),
		})
	}
	return rows, nil
}

// Fig7 reproduces Figure 7 (adapting to environment changes): the DBMS
// migrates between machines; offline models were trained on the original
// hardware's runners, online data comes from one minute of TPC-C on the
// new hardware. The paper's shape: the disk writer improves most (98%,
// 86%), the log serializer up to 91%; the execution engine on smaller
// hardware is the one case online data does not help (§6.4 attributes it
// to the missing CPU context features).
func Fig7(sc Scale) ([]SubsystemRow, error) {
	var rows []SubsystemRow
	scenarios := []struct {
		name     string
		trainHW  sim.HardwareProfile // where the offline runners ran
		deployHW sim.HardwareProfile // where the DBMS now runs
	}{
		{"Larger HW", sim.SmallHW, sim.LargeHW},
		{"Smaller HW", sim.LargeHW, sim.SmallHW},
	}
	for i, sce := range scenarios {
		offline, err := collectOffline(sce.trainHW, int64(31+i), sc)
		if err != nil {
			return nil, err
		}
		online, err := collectOnline(sce.deployHW, tpccGen(2), 1, sc.OnlineTxns, 100, int64(41+i))
		if err != nil {
			return nil, err
		}
		// The paper evaluates Fig. 7 with 5-fold cross-validation on the
		// combined data, so the split is row-wise.
		trainOn, testOn := model.SplitRows(online.Points, 0.2, int64(51+i))
		errs, err := evalSubsystems(offline, trainOn, testOn)
		if err != nil {
			return nil, err
		}
		for _, sub := range tscout.AllSubsystems {
			rows = append(rows, SubsystemRow{
				Subsystem: sub, Scenario: sce.name,
				OfflineUS:    errs.OfflineUS[sub],
				OnlineUS:     errs.OnlineUS[sub],
				ReductionPct: reduction(errs.OfflineUS[sub], errs.OnlineUS[sub]),
			})
		}
	}
	return rows, nil
}

// ConvergenceRow is one point of a Figure 9/10 convergence curve.
type ConvergenceRow struct {
	Subsystem tscout.SubsystemID
	DataSize  int
	// OfflineUS is the horizontal baseline; OnlineUS the error of a
	// model trained on DataSize online points.
	OfflineUS float64
	OnlineUS  float64
}

// Fig9 reproduces Figure 9 (model convergence, TPC-C): error vs online
// training-set size against the offline baseline. The paper's shape: the
// log serializer and disk writer converge far below the baseline; the
// networking difference is small; the execution engine's online benefit
// is marginal with a single client.
func Fig9(sc Scale) ([]ConvergenceRow, error) {
	return convergence(tpccGen(2), 1, sc, 61)
}

// Fig10 reproduces Figure 10 (model convergence, CH-benCHmark): the HTAP
// mix shows the same trends with a slower log-serializer convergence.
func Fig10(sc Scale) ([]ConvergenceRow, error) {
	return convergence(chbenchGen(1), 20, sc, 71)
}

func convergence(gen workload.Generator, terminals int, sc Scale, seed int64) ([]ConvergenceRow, error) {
	offline, err := collectOffline(defaultProfile(), seed, sc)
	if err != nil {
		return nil, err
	}
	// Collect a large online pool, then train on increasing samples.
	online, err := collectOnline(defaultProfile(), gen, terminals, sc.OnlineTxns*2, 100, seed+1)
	if err != nil {
		return nil, err
	}
	// The paper evaluates convergence with 5-fold cross-validation, so
	// the split is row-wise: test templates also appear in training.
	trainPool, test := model.SplitRows(online.Points, 0.2, seed+2)

	var rows []ConvergenceRow
	for _, sub := range tscout.AllSubsystems {
		offSub := model.FilterSub(offline, sub)
		poolSub := model.FilterSub(trainPool, sub)
		testSub := model.FilterSub(test, sub)
		if len(testSub) == 0 || len(poolSub) == 0 {
			continue
		}
		offSet, err := model.Train(offSub, trainer())
		if err != nil {
			return nil, err
		}
		baseline := offSet.AvgAbsErrorByTemplate(testSub)
		for _, size := range sc.ConvergenceSizes {
			sample := model.Sample(poolSub, size, seed+3)
			combined := append(append([]model.Point(nil), offSub...), sample...)
			set, err := model.Train(combined, trainer())
			if err != nil {
				return nil, err
			}
			rows = append(rows, ConvergenceRow{
				Subsystem: sub,
				DataSize:  size,
				OfflineUS: baseline,
				OnlineUS:  set.AvgAbsErrorByTemplate(testSub),
			})
		}
	}
	return rows, nil
}

// Fig11Row is one bar of Figure 11: execution-engine error reduction from
// online data as client count grows.
type Fig11Row struct {
	Terminals    int
	DataSize     int
	OfflineUS    float64
	OnlineUS     float64
	ReductionPct float64
}

// Fig11 reproduces Figure 11 (convergence under concurrency): with more
// clients, contention that offline runners never see dominates execution
// time, so the offline models' error grows and online data's reduction
// approaches 98-99%.
func Fig11(sc Scale) ([]Fig11Row, error) {
	offline, err := collectOffline(defaultProfile(), 81, sc)
	if err != nil {
		return nil, err
	}
	offEE := model.FilterSub(offline, tscout.SubsystemExecutionEngine)
	var rows []Fig11Row
	for _, terminals := range []int{2, 5, 10, 20} {
		online, err := collectOnlineComplete(defaultProfile(), tpccGen(2), terminals,
			sc.OnlineTxns, 100, int64(82+terminals))
		if err != nil {
			return nil, err
		}
		trainOn, testOn := model.SplitRows(online.Points, 0.2, 83)
		trainEE := model.FilterSub(trainOn, tscout.SubsystemExecutionEngine)
		testEE := model.FilterSub(testOn, tscout.SubsystemExecutionEngine)
		if len(testEE) == 0 {
			continue
		}
		offSet, err := model.Train(offEE, trainer())
		if err != nil {
			return nil, err
		}
		offErr := offSet.AvgAbsErrorByTemplate(testEE)
		// The paper's Fig. 11 sizes (10k/20k/30k) are large relative to
		// the collected pool; sweep quarters of the available data.
		sizes := []int{len(trainEE) / 4, len(trainEE) / 2, len(trainEE)}
		for _, size := range sizes {
			sample := model.Sample(trainEE, size, 84)
			set, err := model.Train(append(append([]model.Point(nil), offEE...), sample...), trainer())
			if err != nil {
				return nil, err
			}
			onErr := set.AvgAbsErrorByTemplate(testEE)
			rows = append(rows, Fig11Row{
				Terminals: terminals, DataSize: size,
				OfflineUS: offErr, OnlineUS: onErr,
				ReductionPct: reduction(offErr, onErr),
			})
		}
	}
	return rows, nil
}

// Fig12 reproduces Figure 12 (model generalization): online data is
// collected in one deployment setting, then the models predict a second,
// unseen setting. Scenarios vary database size, hardware, thread count,
// and the query set. The paper's shape: small-error models (networking,
// execution engine) stay robust; the disk writer degrades when migrating
// to larger hardware it has no context features for.
func Fig12(sc Scale) ([]SubsystemRow, error) {
	type scenario struct {
		name              string
		trainWH, evalWH   int
		trainHW, evalHW   sim.HardwareProfile
		trainCli, evalCli int
		templateHoldout   bool
	}
	scenarios := []scenario{
		{name: "Larger DB", trainWH: 1, evalWH: 4, trainHW: sim.LargeHW, evalHW: sim.LargeHW, trainCli: 1, evalCli: 1},
		{name: "Smaller DB", trainWH: 4, evalWH: 1, trainHW: sim.LargeHW, evalHW: sim.LargeHW, trainCli: 1, evalCli: 1},
		{name: "Larger HW", trainWH: 2, evalWH: 2, trainHW: sim.SmallHW, evalHW: sim.LargeHW, trainCli: 1, evalCli: 1},
		{name: "Smaller HW", trainWH: 2, evalWH: 2, trainHW: sim.LargeHW, evalHW: sim.SmallHW, trainCli: 1, evalCli: 1},
		{name: "More Threads", trainWH: 2, evalWH: 2, trainHW: sim.LargeHW, evalHW: sim.LargeHW, trainCli: 1, evalCli: 20},
		{name: "Fewer Threads", trainWH: 2, evalWH: 2, trainHW: sim.LargeHW, evalHW: sim.LargeHW, trainCli: 20, evalCli: 1},
		{name: "New Queries", trainWH: 2, evalWH: 2, trainHW: sim.LargeHW, evalHW: sim.LargeHW, trainCli: 1, evalCli: 1, templateHoldout: true},
	}
	var rows []SubsystemRow
	for i, sce := range scenarios {
		seed := int64(91 + i*10)
		offline, err := collectOffline(sce.trainHW, seed, sc)
		if err != nil {
			return nil, err
		}
		var trainOn, testOn []model.Point
		if sce.templateHoldout {
			online, err := collectOnline(sce.trainHW, tpccGen(sce.trainWH),
				sce.trainCli, sc.OnlineTxns, 100, seed+1)
			if err != nil {
				return nil, err
			}
			trainOn, testOn = splitPerSubsystem(online.Points, 0.2, seed+2)
		} else {
			trainRun, err := collectOnline(sce.trainHW, tpccGen(sce.trainWH),
				sce.trainCli, sc.OnlineTxns, 100, seed+1)
			if err != nil {
				return nil, err
			}
			evalRun, err := collectOnline(sce.evalHW, tpccGen(sce.evalWH),
				sce.evalCli, sc.OnlineTxns, 100, seed+2)
			if err != nil {
				return nil, err
			}
			trainOn, testOn = trainRun.Points, evalRun.Points
		}
		errs, err := evalSubsystems(offline, trainOn, testOn)
		if err != nil {
			return nil, err
		}
		for _, sub := range tscout.AllSubsystems {
			rows = append(rows, SubsystemRow{
				Subsystem: sub, Scenario: sce.name,
				OfflineUS:    errs.OfflineUS[sub],
				OnlineUS:     errs.OnlineUS[sub],
				ReductionPct: reduction(errs.OfflineUS[sub], errs.OnlineUS[sub]),
			})
		}
	}
	return rows, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
