package experiment

import (
	"fmt"

	"tscout/internal/tscout"
	"tscout/internal/workload"
)

// Fig1Row is one bar of Figure 1: TPC-C transaction p99 latency under a
// metrics-collection configuration.
type Fig1Row struct {
	Config string
	P99Ms  float64
}

// Fig1 reproduces Figure 1 (user-space vs kernel-space metrics
// collection): TPC-C with a single client under (1) collection disabled,
// (2) user-space collection, (3) kernel-space collection. The paper's
// shape: none < kernel < user.
func Fig1(sc Scale) ([]Fig1Row, error) {
	configs := []struct {
		name string
		mode tscout.Mode
		rate int
	}{
		{"No Metrics", tscout.KernelContinuous, 0},
		{"User-space", tscout.UserToggle, 100},
		{"Kernel-space", tscout.KernelContinuous, 100},
	}
	var rows []Fig1Row
	for _, c := range configs {
		srv, err := newServer(defaultProfile(), c.mode, true, 42, false)
		if err != nil {
			return nil, err
		}
		gen := tpccGen(1)
		if err := gen.Setup(srv); err != nil {
			return nil, err
		}
		srv.TS.Sampler().SetAllRates(c.rate)
		res, err := workload.Run(srv, gen, workload.Config{
			Terminals: 1, Transactions: sc.OnlineTxns, Seed: 42,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig1Row{Config: c.name, P99Ms: float64(res.P99NS) / 1e6})
	}
	return rows, nil
}

// OverheadRow is one point of Figures 5 and 6: throughput and
// training-data generation rate at a sampling rate, per collection mode.
type OverheadRow struct {
	Workload      string
	Mode          tscout.Mode
	Rate          int
	ThroughputTPS float64
	SamplesPerSec float64
	// Stats is the Processor's end-of-run pipeline telemetry: drop
	// fractions and budget degradation explain the peak-then-decline of
	// Fig. 6 directly from the collector's own counters.
	Stats tscout.ProcessorStats
}

// fig56Workloads builds the four OLTP workloads of §6.2. TPC-C's
// 200-warehouse database is represented by the scaled 8-warehouse
// configuration (DESIGN.md).
func fig56Workloads() []workload.Generator {
	return []workload.Generator{
		&workload.YCSB{Records: 4000},
		&workload.SmallBank{Customers: 1000},
		&workload.TATP{Subscribers: 1000},
		tpccGen(8),
	}
}

// Fig5and6 reproduces Figures 5 (transaction throughput vs sampling rate)
// and 6 (training-data samples/s vs sampling rate) for the three
// collection methods across the four OLTP workloads, 20 clients each.
func Fig5and6(sc Scale) ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, gen := range fig56Workloads() {
		for _, mode := range []tscout.Mode{
			tscout.KernelContinuous, tscout.UserToggle, tscout.UserContinuous,
		} {
			for _, rate := range sc.RatePoints {
				srv, err := newServer(defaultProfile(), mode, true, 99, false)
				if err != nil {
					return nil, err
				}
				if err := gen.Setup(srv); err != nil {
					return nil, err
				}
				srv.TS.Sampler().SetAllRates(rate)
				res, err := workload.Run(srv, gen, workload.Config{
					Terminals: 20, Transactions: sc.OnlineTxns, Seed: 99,
				})
				if err != nil {
					return nil, err
				}
				rows = append(rows, OverheadRow{
					Workload:      gen.Name(),
					Mode:          mode,
					Rate:          rate,
					ThroughputTPS: res.ThroughputTPS,
					SamplesPerSec: res.SamplesPerSec,
					Stats:         res.Processor,
				})
			}
		}
	}
	return rows, nil
}

// Fig8Row is one phase of Figure 8's adjustable-sampling timeline.
type Fig8Row struct {
	Phase         string
	Rates         map[tscout.SubsystemID]int
	ThroughputTPS float64
	// Stats snapshots the Processor pipeline at the end of the phase.
	Stats tscout.ProcessorStats
}

// Fig8 reproduces Figure 8 (adjustable sampling): YCSB runs through three
// phases — no collection, 10% on all four subsystems, then 10% only on
// the WAL subsystems. Throughput dips in the middle phase and recovers in
// the third because YCSB is read-only and generates almost no WAL work.
func Fig8(sc Scale) ([]Fig8Row, error) {
	srv, err := newServer(defaultProfile(), tscout.KernelContinuous, true, 8, false)
	if err != nil {
		return nil, err
	}
	gen := &workload.YCSB{Records: 4000}
	if err := gen.Setup(srv); err != nil {
		return nil, err
	}
	phases := []struct {
		name  string
		rates map[tscout.SubsystemID]int
	}{
		{"collection off", map[tscout.SubsystemID]int{}},
		{"10%% all subsystems", map[tscout.SubsystemID]int{
			tscout.SubsystemExecutionEngine: 10, tscout.SubsystemNetworking: 10,
			tscout.SubsystemLogSerializer: 10, tscout.SubsystemDiskWriter: 10,
		}},
		{"10%% WAL only", map[tscout.SubsystemID]int{
			tscout.SubsystemLogSerializer: 10, tscout.SubsystemDiskWriter: 10,
		}},
	}
	var rows []Fig8Row
	for i, ph := range phases {
		srv.TS.Sampler().SetAllRates(0)
		for sub, rate := range ph.rates {
			srv.TS.Sampler().SetRate(sub, rate)
		}
		res, err := workload.Run(srv, gen, workload.Config{
			Terminals: 20, Transactions: sc.OnlineTxns, Seed: int64(100 + i),
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{
			Phase: fmt.Sprintf(ph.name), Rates: ph.rates,
			ThroughputTPS: res.ThroughputTPS, Stats: res.Processor,
		})
	}
	return rows, nil
}

// SummaryRow captures the §6.2 headline claims derived from Figs. 5/6.
type SummaryRow struct {
	// KernelOverheadPctAt10 is the throughput loss of the recommended
	// configuration (Kernel-Continuous at 10%) vs no collection.
	KernelOverheadPctAt10 float64
	// KernelPeakSamplesPerSec and BestUserSamplesPerSec compare peak
	// data-generation rates (the paper's ~3x claim).
	KernelPeakSamplesPerSec float64
	BestUserSamplesPerSec   float64
}

// Summary computes the paper's §6.2 claims on the YCSB workload: ~7%
// overhead at the recommended setting and a ~3x collection-rate advantage
// for Kernel-Continuous.
func Summary() (*SummaryRow, error) {
	sc := Quick
	sc.RatePoints = []int{0, 10, 20, 30, 100}
	run := func(mode tscout.Mode, rate int) (float64, float64, error) {
		srv, err := newServer(defaultProfile(), mode, true, 7, false)
		if err != nil {
			return 0, 0, err
		}
		gen := &workload.YCSB{Records: 4000}
		if err := gen.Setup(srv); err != nil {
			return 0, 0, err
		}
		srv.TS.Sampler().SetAllRates(rate)
		res, err := workload.Run(srv, gen, workload.Config{
			Terminals: 20, Transactions: sc.OnlineTxns, Seed: 7,
		})
		if err != nil {
			return 0, 0, err
		}
		return res.ThroughputTPS, res.SamplesPerSec, nil
	}
	base, _, err := run(tscout.KernelContinuous, 0)
	if err != nil {
		return nil, err
	}
	at10, _, err := run(tscout.KernelContinuous, 10)
	if err != nil {
		return nil, err
	}
	out := &SummaryRow{KernelOverheadPctAt10: (base - at10) / base * 100}
	for _, rate := range []int{10, 20, 30} {
		if _, sps, err := run(tscout.KernelContinuous, rate); err == nil && sps > out.KernelPeakSamplesPerSec {
			out.KernelPeakSamplesPerSec = sps
		}
	}
	for _, mode := range []tscout.Mode{tscout.UserToggle, tscout.UserContinuous} {
		for _, rate := range []int{10, 30, 100} {
			if _, sps, err := run(mode, rate); err == nil && sps > out.BestUserSamplesPerSec {
				out.BestUserSamplesPerSec = sps
			}
		}
	}
	return out, nil
}
