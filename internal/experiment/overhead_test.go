package experiment

import (
	"testing"

	"tscout/internal/tscout"
)

func TestFig1Shape(t *testing.T) {
	rows, err := Fig1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %+v", rows)
	}
	none, user, kern := rows[0].P99Ms, rows[1].P99Ms, rows[2].P99Ms
	// Paper Fig. 1: none (5.2) < kernel (5.7) < user (6.3).
	if !(none < kern) {
		t.Fatalf("no-metrics must be fastest: none=%.3f kernel=%.3f user=%.3f", none, kern, user)
	}
	if !(kern < user) {
		t.Fatalf("kernel must beat user-space: none=%.3f kernel=%.3f user=%.3f", none, kern, user)
	}
	// The gaps are tail-latency effects, not multiples.
	if user > none*2 {
		t.Fatalf("user-space overhead out of proportion: %.3f vs %.3f", user, none)
	}
}

func TestFig5and6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	sc := Quick
	sc.OnlineTxns = 800
	sc.RatePoints = []int{0, 20, 100}
	rows, err := Fig5and6(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Index rows by (workload, mode, rate).
	type key struct {
		wl   string
		mode tscout.Mode
		rate int
	}
	m := map[key]OverheadRow{}
	wls := map[string]bool{}
	for _, r := range rows {
		m[key{r.Workload, r.Mode, r.Rate}] = r
		wls[r.Workload] = true
	}
	if len(wls) != 4 {
		t.Fatalf("expected 4 workloads: %v", wls)
	}
	for wl := range wls {
		kc0 := m[key{wl, tscout.KernelContinuous, 0}]
		kc100 := m[key{wl, tscout.KernelContinuous, 100}]
		ut100 := m[key{wl, tscout.UserToggle, 100}]
		uc0 := m[key{wl, tscout.UserContinuous, 0}]
		uc100 := m[key{wl, tscout.UserContinuous, 100}]

		// Fig 5: throughput falls as the rate rises for every method.
		if !(kc100.ThroughputTPS < kc0.ThroughputTPS) {
			t.Fatalf("%s: kernel throughput must fall with rate: %+v vs %+v", wl, kc100, kc0)
		}
		// User-Toggle is the slowest at full rate (3 syscalls/OU).
		if !(ut100.ThroughputTPS < kc100.ThroughputTPS) {
			t.Fatalf("%s: User-Toggle must be slowest: toggle=%.0f kernel=%.0f",
				wl, ut100.ThroughputTPS, kc100.ThroughputTPS)
		}
		// User-Continuous pays PMU save cost even at 0%.
		if !(uc0.ThroughputTPS < kc0.ThroughputTPS) {
			t.Fatalf("%s: User-Continuous at 0%% must trail the baseline: %.0f vs %.0f",
				wl, uc0.ThroughputTPS, kc0.ThroughputTPS)
		}
		// Fig 6: Kernel-Continuous generates data fastest at full rate.
		if !(kc100.SamplesPerSec > ut100.SamplesPerSec && kc100.SamplesPerSec > uc100.SamplesPerSec) {
			t.Fatalf("%s: kernel collection rate must dominate: kc=%.0f ut=%.0f uc=%.0f",
				wl, kc100.SamplesPerSec, ut100.SamplesPerSec, uc100.SamplesPerSec)
		}
		// Rate 0 generates nothing.
		if kc0.SamplesPerSec != 0 {
			t.Fatalf("%s: 0%% rate generated samples", wl)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	sc := Quick
	sc.OnlineTxns = 1000
	rows, err := Fig8(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("phases: %+v", rows)
	}
	off, all, walOnly := rows[0].ThroughputTPS, rows[1].ThroughputTPS, rows[2].ThroughputTPS
	// Paper Fig. 8: enabling all subsystems dips throughput ~7%;
	// disabling EE+networking recovers it (YCSB is read-only, so the
	// WAL-only phase collects almost nothing).
	if !(all < off) {
		t.Fatalf("collection must dip throughput: all=%.0f off=%.0f", all, off)
	}
	if !(walOnly > all) {
		t.Fatalf("WAL-only phase must recover: walOnly=%.0f all=%.0f", walOnly, all)
	}
	dip := (off - all) / off
	if dip < 0.005 || dip > 0.40 {
		t.Fatalf("dip out of plausible range: %.1f%%", dip*100)
	}
	recovery := (off - walOnly) / off
	if recovery > dip {
		t.Fatalf("recovery must close most of the gap: recovery=%.3f dip=%.3f", recovery, dip)
	}
}

func TestSummaryClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	s, err := Summary()
	if err != nil {
		t.Fatal(err)
	}
	// Paper §6.2: ~7% overhead at the recommended configuration; the
	// shape constraint here is "small but nonzero".
	if s.KernelOverheadPctAt10 <= 0 || s.KernelOverheadPctAt10 > 25 {
		t.Fatalf("overhead at 10%%: %.1f%%", s.KernelOverheadPctAt10)
	}
	// Paper §6.2: kernel-space collection generates ~3x more data than
	// the best user-space method; require a clear multiple.
	ratio := s.KernelPeakSamplesPerSec / s.BestUserSamplesPerSec
	if ratio < 1.5 {
		t.Fatalf("kernel data-rate advantage too small: %.2fx (kc=%.0f user=%.0f)",
			ratio, s.KernelPeakSamplesPerSec, s.BestUserSamplesPerSec)
	}
}
