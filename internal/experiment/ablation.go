package experiment

import (
	"tscout/internal/dbms"
	"tscout/internal/model"
	"tscout/internal/runner"
	"tscout/internal/tscout"
	"tscout/internal/wal"
	"tscout/internal/workload"
)

// The ablations probe the design choices DESIGN.md calls out: how much the
// measurement-noise amplitude, the group-commit policy, and TScout's
// per-query sampling granularity each contribute to the headline results.

// NoiseAblationRow is one point of the noise-amplitude sweep.
type NoiseAblationRow struct {
	Sigma float64
	// LogSerErrorUS is the offline model's error on online data: the
	// Fig. 2 effect must come from the batching gap, not from noise.
	LogSerOfflineUS float64
	LogSerOnlineUS  float64
}

// AblationNoise sweeps the measurement-noise amplitude and recomputes the
// Fig. 2 log-serializer comparison. The offline/online gap must persist at
// zero noise (it is structural: group-commit batching) and online error
// must grow with sigma (the irreducible floor).
func AblationNoise(sc Scale) ([]NoiseAblationRow, error) {
	var rows []NoiseAblationRow
	for _, sigma := range []float64{0, 0.02, 0.04, 0.08} {
		collect := func(seed int64, offline bool) ([]model.Point, error) {
			cfg := dbms.Config{
				Profile: defaultProfile(), Seed: seed, NoiseSigma: sigma,
				Instrument: true, DisableFeedback: true,
				WAL: wal.Config{GroupSize: 32, FlushIntervalNS: 200_000},
			}
			if offline {
				cfg.WAL = wal.Config{Synchronous: true}
			}
			srv, err := dbms.NewServer(cfg)
			if err != nil {
				return nil, err
			}
			if offline {
				if err := runner.RunAll(srv, runner.Config{Scale: sc.RunnerScale}); err != nil {
					return nil, err
				}
				srv.TS.Processor().Drain(tscout.DrainOptions{})
			} else {
				gen := tpccGen(2)
				if err := gen.Setup(srv); err != nil {
					return nil, err
				}
				srv.TS.Sampler().SetAllRates(100)
				if _, err := workload.Run(srv, gen, workload.Config{
					Terminals: 16, Transactions: sc.OnlineTxns, Seed: seed,
				}); err != nil {
					return nil, err
				}
			}
			return model.FromTrainingPoints(srv.TS.Processor().Points(),
				hwContext(defaultProfile())), nil
		}
		offline, err := collect(201, true)
		if err != nil {
			return nil, err
		}
		online, err := collect(202, false)
		if err != nil {
			return nil, err
		}
		trainOn, testOn := model.SplitRows(
			model.FilterSub(online, tscout.SubsystemLogSerializer), 0.2, 203)
		offSub := model.FilterSub(offline, tscout.SubsystemLogSerializer)
		offSet, err := model.Train(offSub, trainer())
		if err != nil {
			return nil, err
		}
		onSet, err := model.Train(append(append([]model.Point(nil), offSub...), trainOn...), trainer())
		if err != nil {
			return nil, err
		}
		rows = append(rows, NoiseAblationRow{
			Sigma:           sigma,
			LogSerOfflineUS: offSet.AvgAbsErrorByTemplate(testOn),
			LogSerOnlineUS:  onSet.AvgAbsErrorByTemplate(testOn),
		})
	}
	return rows, nil
}

// GroupCommitAblationRow is one WAL-policy configuration.
type GroupCommitAblationRow struct {
	GroupSize        int
	FlushIntervalUS  int64
	ThroughputTPS    float64
	P99US            int64
	MeanBatchRecords float64
}

// AblationGroupCommit sweeps the WAL's group-commit policy under TPC-C.
// Larger groups amortize flush IO into bigger batches (the very batching
// effect whose absence from offline runner data drives Figs. 2/9), at the
// cost of commit tail latency; with an unsaturated log device the longer
// flush windows also stall clients, so throughput is highest at small
// group sizes here.
func AblationGroupCommit(sc Scale) ([]GroupCommitAblationRow, error) {
	var rows []GroupCommitAblationRow
	for _, cfg := range []wal.Config{
		{Synchronous: true},
		{GroupSize: 4, FlushIntervalNS: 50_000},
		{GroupSize: 16, FlushIntervalNS: 200_000},
		{GroupSize: 64, FlushIntervalNS: 800_000},
	} {
		srv, err := dbms.NewServer(dbms.Config{
			Profile: defaultProfile(), Seed: 301, NoiseSigma: noiseSigma, WAL: cfg,
		})
		if err != nil {
			return nil, err
		}
		gen := tpccGen(2)
		if err := gen.Setup(srv); err != nil {
			return nil, err
		}
		res, err := workload.Run(srv, gen, workload.Config{
			Terminals: 16, Transactions: sc.OnlineTxns, Seed: 302,
		})
		if err != nil {
			return nil, err
		}
		flushes, recs, _ := srv.WAL.Stats()
		_ = flushes
		row := GroupCommitAblationRow{
			GroupSize:       cfg.GroupSize,
			FlushIntervalUS: cfg.FlushIntervalNS / 1000,
			ThroughputTPS:   res.ThroughputTPS,
			P99US:           res.P99NS / 1000,
		}
		if flushes > 0 {
			row.MeanBatchRecords = float64(recs) / float64(flushes)
		}
		if cfg.Synchronous {
			row.GroupSize = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ExternalCollectionRow compares feature-collection strategies (§2.2).
type ExternalCollectionRow struct {
	Strategy      string
	ThroughputTPS float64
	P99US         int64
}

// AblationExternalCollection contrasts §2.2's approaches under TPC-C:
// no collection, TScout's internal markers at full rate, and EXPLAIN-based
// external collection (an extra planning round per statement, as QPPNet-
// style systems impose). The paper's argument is that external collection
// "slows down query execution, making it challenging to collect training
// data in an online setting".
func AblationExternalCollection(sc Scale) ([]ExternalCollectionRow, error) {
	var rows []ExternalCollectionRow
	for _, cfg := range []struct {
		name       string
		instrument bool
		rate       int
		external   bool
	}{
		{"no collection", false, 0, false},
		{"internal (TScout 100%)", true, 100, false},
		{"external (EXPLAIN/query)", false, 0, true},
	} {
		srv, err := newServer(defaultProfile(), tscout.KernelContinuous, cfg.instrument, 501, false)
		if err != nil {
			return nil, err
		}
		gen := tpccGen(2)
		if err := gen.Setup(srv); err != nil {
			return nil, err
		}
		if srv.TS != nil {
			srv.TS.Sampler().SetAllRates(cfg.rate)
		}
		res, err := workload.Run(srv, gen, workload.Config{
			Terminals: 16, Transactions: sc.OnlineTxns, Seed: 502,
			ExternalCollect: cfg.external,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExternalCollectionRow{
			Strategy:      cfg.name,
			ThroughputTPS: res.ThroughputTPS,
			P99US:         res.P99NS / 1000,
		})
	}
	return rows, nil
}

// SamplingGranularityRow compares per-query sampling (TScout's design)
// against naive per-OU sampling at the same nominal rate.
type SamplingGranularityRow struct {
	Granularity   string
	Rate          int
	ThroughputTPS float64
	P99US         int64
}

// AblationSamplingGranularity contrasts TScout's per-event (per-query)
// sampling decision with an "all or nothing" full-rate configuration —
// quantifying §3.1's claim that fine-grained, adjustable collection is
// what keeps the framework deployable.
func AblationSamplingGranularity(sc Scale) ([]SamplingGranularityRow, error) {
	var rows []SamplingGranularityRow
	for _, cfg := range []struct {
		name string
		rate int
	}{
		{"off", 0},
		{"per-query 10%", 10},
		{"all-or-nothing 100%", 100},
	} {
		srv, err := newServer(defaultProfile(), tscout.KernelContinuous, true, 401, false)
		if err != nil {
			return nil, err
		}
		gen := tpccGen(2)
		if err := gen.Setup(srv); err != nil {
			return nil, err
		}
		srv.TS.Sampler().SetAllRates(cfg.rate)
		res, err := workload.Run(srv, gen, workload.Config{
			Terminals: 16, Transactions: sc.OnlineTxns, Seed: 402,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SamplingGranularityRow{
			Granularity:   cfg.name,
			Rate:          cfg.rate,
			ThroughputTPS: res.ThroughputTPS,
			P99US:         res.P99NS / 1000,
		})
	}
	return rows, nil
}
