// Package experiment regenerates every table and figure of the paper's
// evaluation (§6). Each FigN function returns the rows the paper plots;
// cmd/tsbench prints them and bench_test.go wraps them as benchmarks.
// Absolute numbers come from the simulated substrate, so EXPERIMENTS.md
// compares shapes (who wins, by what factor, where crossovers fall)
// rather than raw values.
package experiment

import (
	"bytes"
	"fmt"

	"tscout/internal/archive"
	"tscout/internal/dbms"
	"tscout/internal/model"
	"tscout/internal/runner"
	"tscout/internal/sim"
	"tscout/internal/tscout"
	"tscout/internal/wal"
	"tscout/internal/workload"
)

// Scale selects experiment fidelity: Quick for CI-speed runs, Full for
// the numbers recorded in EXPERIMENTS.md.
type Scale struct {
	// OnlineTxns is the per-collection transaction budget.
	OnlineTxns int
	// RunnerScale multiplies offline sweep density.
	RunnerScale int
	// RatePoints are the sampling rates swept in Figs. 5/6.
	RatePoints []int
	// ConvergenceSizes are the training-set sizes of Figs. 9/10.
	ConvergenceSizes []int
}

// Quick is the CI-speed scale.
var Quick = Scale{
	OnlineTxns:       1500,
	RunnerScale:      1,
	RatePoints:       []int{0, 20, 60, 100},
	ConvergenceSizes: []int{200, 500, 1000, 2000},
}

// Full is the EXPERIMENTS.md scale.
var Full = Scale{
	OnlineTxns:       6000,
	RunnerScale:      2,
	RatePoints:       []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
	ConvergenceSizes: []int{500, 1000, 2000, 4000, 8000, 16000},
}

// trainer is the behavior-model family used throughout the evaluation.
// Forests extrapolate conservatively (constant beyond the training range),
// which is exactly why offline-runner data mis-predicts group-commit
// batches it never saw.
func trainer() model.Trainer { return model.Forest{Trees: 16, MaxDepth: 10, Seed: 7} }

// hwContext returns the hardware features available to the models: per
// §6.4 the only CPU context feature is the clock speed.
func hwContext(p sim.HardwareProfile) []float64 {
	return []float64{p.ClockGHz * 1000}
}

const noiseSigma = 0.04

// defaultProfile is the paper's primary evaluation machine.
func defaultProfile() sim.HardwareProfile { return sim.LargeHW }

// newServer builds a server for an experiment.
func newServer(profile sim.HardwareProfile, mode tscout.Mode, instrument bool, seed int64, syncWAL bool) (*dbms.Server, error) {
	cfg := dbms.Config{
		Profile:    profile,
		Seed:       seed,
		NoiseSigma: noiseSigma,
		Instrument: instrument,
		Mode:       mode,
		// Rates stay fixed during the sweeps, as in the paper's §6.2
		// methodology (the §3.2 feedback is evaluated separately).
		DisableFeedback: true,
	}
	if syncWAL {
		cfg.WAL = wal.Config{Synchronous: true}
	} else {
		cfg.WAL = wal.Config{GroupSize: 32, FlushIntervalNS: 200_000}
	}
	return dbms.NewServer(cfg)
}

// collectOffline runs the offline runners on the given hardware and
// returns their training data (with hardware context features attached).
func collectOffline(profile sim.HardwareProfile, seed int64, sc Scale) ([]model.Point, error) {
	srv, err := newServer(profile, tscout.KernelContinuous, true, seed, true)
	if err != nil {
		return nil, err
	}
	if err := runner.RunAll(srv, runner.Config{Scale: sc.RunnerScale}); err != nil {
		return nil, err
	}
	srv.TS.Processor().Drain(tscout.DrainOptions{})
	return model.FromTrainingPoints(srv.TS.Processor().Points(), hwContext(profile)), nil
}

// onlineRun is one instrumented workload execution.
type onlineRun struct {
	Points []model.Point
	Result workload.Result
}

// collectOnline runs a workload with TScout at the given sampling rate and
// returns the collected training data. It uses the paper's deployment
// configuration — single-threaded Processor, default ring depth, budgeted
// polls — so overload drops samples exactly as a production collector
// would.
func collectOnline(profile sim.HardwareProfile, gen workload.Generator,
	terminals, txns int, rate int, seed int64) (*onlineRun, error) {
	srv, err := newServer(profile, tscout.KernelContinuous, true, seed, false)
	if err != nil {
		return nil, err
	}
	return runOnline(srv, profile, gen, terminals, txns, rate, seed, false, nil)
}

// collectOnlineComplete is the data-hungry variant: a deep ring and an
// unbudgeted final sweep, so no sample is lost to collector saturation.
// Experiments whose conclusions depend on the training pool covering the
// whole run (Fig. 11's high-contention sweep, where 20 terminals
// oversubscribe the budgeted polls several times over) collect with
// this; the rest keep the production-shaped lossy pipeline.
//
// Drain parallelism stays at 1 deliberately: with multiple drain
// threads the global archive sequence is claimed in wall-clock order,
// so Points() — and the seeded train/test split downstream — would vary
// with goroutine scheduling. Completeness comes from ring depth plus
// the final sweep, not from thread count, and a single thread keeps the
// collected pool bit-identical across reruns.
func collectOnlineComplete(profile sim.HardwareProfile, gen workload.Generator,
	terminals, txns int, rate int, seed int64) (*onlineRun, error) {
	ac := newArchiveCapture()
	srv, err := dbms.NewServer(dbms.Config{
		Profile:              profile,
		Seed:                 seed,
		NoiseSigma:           noiseSigma,
		Instrument:           true,
		Mode:                 tscout.KernelContinuous,
		DisableFeedback:      true,
		ProcessorParallelism: 1,
		RingCapacity:         1 << 17,
		Sink:                 ac.w,
		WAL:                  wal.Config{GroupSize: 32, FlushIntervalNS: 200_000},
	})
	if err != nil {
		return nil, err
	}
	return runOnline(srv, profile, gen, terminals, txns, rate, seed, true, ac)
}

// archiveCapture threads the columnar archive through an online run: the
// Processor's drain path streams segments into buf, and after the run the
// training points are read back column-wise (model.FromArchive) instead of
// materializing the in-memory Points() slice. With a single drain thread
// the sink receives batches in archive order, so the round-trip is
// bit-identical to the in-memory path.
type archiveCapture struct {
	buf bytes.Buffer
	w   *archive.Writer
}

func newArchiveCapture() *archiveCapture {
	ac := &archiveCapture{}
	ac.w = archive.NewWriter(&ac.buf)
	return ac
}

func runOnline(srv *dbms.Server, profile sim.HardwareProfile, gen workload.Generator,
	terminals, txns int, rate int, seed int64, finalDrain bool, ac *archiveCapture) (*onlineRun, error) {
	if err := gen.Setup(srv); err != nil {
		return nil, err
	}
	srv.TS.Sampler().SetAllRates(rate)
	res, err := workload.Run(srv, gen, workload.Config{
		Terminals: terminals, Transactions: txns, Seed: seed,
		FinalDrain: finalDrain,
	})
	if err != nil {
		return nil, err
	}
	if ac != nil {
		if err := ac.w.Flush(); err != nil {
			return nil, err
		}
		r, err := archive.NewReader(ac.buf.Bytes())
		if err != nil {
			return nil, err
		}
		pts, err := model.FromArchive(r, hwContext(profile))
		if err != nil {
			return nil, err
		}
		return &onlineRun{Points: pts, Result: res}, nil
	}
	return &onlineRun{
		Points: model.FromTrainingPoints(srv.TS.Processor().Points(), hwContext(profile)),
		Result: res,
	}, nil
}

// tpccGen returns the scaled-down TPC-C generator. warehouses follows the
// paper's scale knob; the other dimensions are globally scaled down
// (DESIGN.md substitution table).
func tpccGen(warehouses int) *workload.TPCC {
	return &workload.TPCC{
		Warehouses:               warehouses,
		CustomersPerDistrict:     20,
		Items:                    200,
		InitialOrdersPerDistrict: 20,
	}
}

func chbenchGen(warehouses int) *workload.CHBench {
	return &workload.CHBench{TPCC: *tpccGen(warehouses)}
}

// subsystemErrors evaluates offline-only vs offline+online models per
// subsystem on a held-out online test set, returning per-subsystem
// average absolute error in microseconds.
type subsystemErrors struct {
	OfflineUS map[tscout.SubsystemID]float64
	OnlineUS  map[tscout.SubsystemID]float64
}

// splitPerSubsystem holds out a fraction of templates independently per
// subsystem, so subsystems with few invocation classes (the WAL pair)
// always retain both training and test data.
func splitPerSubsystem(points []model.Point, frac float64, seed int64) (train, test []model.Point) {
	for i, sub := range tscout.AllSubsystems {
		trn, tst := model.SplitByTemplate(model.FilterSub(points, sub), frac, seed+int64(i))
		train = append(train, trn...)
		test = append(test, tst...)
	}
	return train, test
}

func evalSubsystems(offline, onlineTrain, onlineTest []model.Point) (*subsystemErrors, error) {
	out := &subsystemErrors{
		OfflineUS: map[tscout.SubsystemID]float64{},
		OnlineUS:  map[tscout.SubsystemID]float64{},
	}
	for _, sub := range tscout.AllSubsystems {
		off := model.FilterSub(offline, sub)
		trn := model.FilterSub(onlineTrain, sub)
		tst := model.FilterSub(onlineTest, sub)
		if len(tst) == 0 {
			continue
		}
		offSet, err := model.Train(off, trainer())
		if err != nil {
			return nil, fmt.Errorf("offline %v: %w", sub, err)
		}
		out.OfflineUS[sub] = offSet.AvgAbsErrorByTemplate(tst)

		combined := append(append([]model.Point(nil), off...), trn...)
		onSet, err := model.Train(combined, trainer())
		if err != nil {
			return nil, fmt.Errorf("combined %v: %w", sub, err)
		}
		out.OnlineUS[sub] = onSet.AvgAbsErrorByTemplate(tst)
	}
	return out, nil
}

// reduction computes the paper's "reduction in average absolute error"
// percentage.
func reduction(offline, online float64) float64 {
	if offline <= 0 {
		return 0
	}
	return (offline - online) / offline * 100
}
