package bpf

import (
	"bytes"
	"testing"

	"tscout/internal/kernel"
	"tscout/internal/sim"
)

func TestPerCPURingRoutesByCPU(t *testing.T) {
	r := NewPerCPURing("t/percpu", 4, 8)
	r.SubmitFrom(0, []byte{0})
	r.SubmitFrom(2, []byte{2})
	r.SubmitFrom(2, []byte{22})
	r.Submit([]byte{1})         // compat path: CPU 0
	r.SubmitFrom(6, []byte{3})  // out of range: wraps to CPU 2
	r.SubmitFrom(-1, []byte{4}) // negative: clamps to CPU 0

	wantPending := []int{3, 0, 3, 0}
	for cpu, want := range wantPending {
		if got := r.RingStats(cpu).Pending; got != want {
			t.Fatalf("cpu %d pending = %d, want %d", cpu, got, want)
		}
	}
	if got := r.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}

	var b Batch
	if n := r.DrainBatch(2, &b, 0); n != 3 {
		t.Fatalf("DrainBatch(cpu 2) = %d, want 3", n)
	}
	for i, want := range [][]byte{{2}, {22}, {3}} {
		if !bytes.Equal(b.Sample(i), want) {
			t.Fatalf("cpu 2 sample %d = %v, want %v", i, b.Sample(i), want)
		}
	}
}

func TestPerCPURingOverwriteAndIdentity(t *testing.T) {
	r := NewPerCPURing("t/percpu", 2, 4)
	for i := 0; i < 10; i++ {
		r.SubmitFrom(1, []byte{byte(i)})
	}
	var b Batch
	drained := r.DrainBatch(1, &b, 3)
	if drained != 3 {
		t.Fatalf("drained %d, want 3", drained)
	}
	// Oldest surviving samples first: 10 submitted into 4 slots = 6 drops,
	// so the ring held 6..9 and the batch starts at 6.
	for i := 0; i < 3; i++ {
		if got := b.Sample(i)[0]; got != byte(6+i) {
			t.Fatalf("sample %d = %d, want %d", i, got, 6+i)
		}
	}
	st := r.RingStats(1)
	if st.Submitted != 10 || st.Dropped != 6 || st.Drained != 3 || st.Pending != 1 {
		t.Fatalf("cpu 1 stats %+v", st)
	}
	if st.Submitted != st.Drained+st.Dropped+int64(st.Pending) {
		t.Fatalf("per-ring identity violated: %+v", st)
	}
	agg := r.Stats()
	if agg.Submitted != 10 || agg.Capacity != 8 {
		t.Fatalf("aggregate stats %+v", agg)
	}

	r.Reset()
	if st := r.Stats(); st.Submitted != 0 || st.Pending != 0 {
		t.Fatalf("stats after Reset: %+v", st)
	}
}

// TestPerCPURingDrainIsAllocationFree is the tentpole's zero-allocation
// contract: once the slot buffers and the destination batch have warmed
// up, a submit → drain cycle allocates nothing.
func TestPerCPURingDrainIsAllocationFree(t *testing.T) {
	r := NewPerCPURing("t/percpu", 2, 64)
	payload := bytes.Repeat([]byte{7}, 248)
	var b Batch
	// Warm-up: grow every slot buffer and the batch buffer.
	for i := 0; i < 128; i++ {
		r.SubmitFrom(i%2, payload)
	}
	b.Reset()
	r.DrainBatch(0, &b, 0)
	r.DrainBatch(1, &b, 0)

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			r.SubmitFrom(i%2, payload)
		}
		b.Reset()
		r.DrainBatch(0, &b, 0)
		r.DrainBatch(1, &b, 0)
	})
	if allocs != 0 {
		t.Fatalf("warmed submit+drain cycle allocates %.1f times per run, want 0", allocs)
	}
}

func TestPerfRingBufferDrainBatch(t *testing.T) {
	r := NewPerfRingBuffer("t/rb", 4)
	for i := 0; i < 6; i++ {
		r.SubmitFrom(3, []byte{byte(i)}) // CPU hint ignored
	}
	var b Batch
	if n := r.DrainBatch(&b, 0); n != 4 {
		t.Fatalf("drained %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if got := b.Sample(i)[0]; got != byte(2+i) {
			t.Fatalf("sample %d = %d, want %d", i, got, 2+i)
		}
	}
	st := r.Stats()
	if st.Drained != 4 || st.Submitted != 6 || st.Dropped != 2 || st.Pending != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.Submitted != st.Drained+st.Dropped+int64(st.Pending) {
		t.Fatalf("identity violated: %+v", st)
	}
}

func TestBatchSampleBoundaries(t *testing.T) {
	var b Batch
	b.Append([]byte{1, 2})
	b.Append(nil)
	b.Append([]byte{3})
	if b.Len() != 3 || b.Bytes() != 3 {
		t.Fatalf("Len=%d Bytes=%d", b.Len(), b.Bytes())
	}
	if !bytes.Equal(b.Sample(0), []byte{1, 2}) || len(b.Sample(1)) != 0 || !bytes.Equal(b.Sample(2), []byte{3}) {
		t.Fatalf("samples %v %v %v", b.Sample(0), b.Sample(1), b.Sample(2))
	}
	b.Reset()
	if b.Len() != 0 || b.Bytes() != 0 {
		t.Fatalf("batch not empty after Reset")
	}
}

// TestVMPerfOutputRoutesByTaskCPU runs one verified program holding a
// per-CPU ring from tasks pinned to different CPUs and asserts each
// submission landed in the submitting task's ring — the kernel-side half
// of the per-CPU drain contract.
func TestVMPerfOutputRoutesByTaskCPU(t *testing.T) {
	ring := NewPerCPURing("t/percpu", 4, 8)
	b := NewBuilder("percpu-out")
	idx := b.AddMap(ring)
	p := b.StoreImm(R10, -8, 99).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Mov(R3, 8).
		Call(HelperPerfOutput).
		Mov(R0, 0).
		Exit().MustBuild()
	lp, err := Load(p, 0)
	if err != nil {
		t.Fatalf("per-CPU perf output program rejected: %v", err)
	}

	k := kernel.New(sim.LargeHW, 1, 0)
	k.SetNumCPUs(4)
	t0 := k.NewTask("w0") // pid 1 -> cpu 0
	t1 := k.NewTask("w1") // pid 2 -> cpu 1
	t1.Migrate(3)
	for i, task := range []*kernel.Task{t0, t1, t1} {
		if _, _, err := lp.Run(task, nil); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if got := ring.RingStats(0).Pending; got != 1 {
		t.Fatalf("cpu 0 pending = %d, want 1", got)
	}
	if got := ring.RingStats(3).Pending; got != 2 {
		t.Fatalf("cpu 3 pending = %d, want 2", got)
	}
	if got := ring.RingStats(1).Pending; got != 0 {
		t.Fatalf("cpu 1 pending = %d, want 0 after Migrate", got)
	}
}
