package bpf

import "fmt"

// Analysis is the result of abstract-interpreting a program to a
// fixpoint: the per-instruction abstract in-states, the loop-head set,
// and per-edge feasibility of every conditional branch. It is the shared
// substrate for Verify, the liveness/reaching-definitions passes, the
// optimizer, and Lint.
type Analysis struct {
	prog     *Program
	maxInsns int
	states   []absState // abstract state *before* each instruction
	loopHead []bool     // targets of backward jumps (widening points)
	// Per-pc conditional edge feasibility, computed from the fixpoint
	// in-state. Meaningful only where isCondJump(insn.Op) and Reached.
	condTaken []bool
	condFall  []bool
}

// Prog returns the analyzed program.
func (a *Analysis) Prog() *Program { return a.prog }

// Reached reports whether pc is reachable under the abstract semantics
// (CFG-reachable pcs may still be unreached when every path to them is
// pruned as infeasible).
func (a *Analysis) Reached(pc int) bool { return a.states[pc].valid }

// CondEdges reports feasibility of the taken and fall-through edges of
// the conditional jump at pc. Both are false when pc is unreached.
func (a *Analysis) CondEdges(pc int) (taken, fall bool) {
	return a.condTaken[pc], a.condFall[pc]
}

// LoopHead reports whether pc is the target of a backward jump.
func (a *Analysis) LoopHead(pc int) bool { return a.loopHead[pc] }

// Verify statically checks a program. maxInsns of 0 uses DefaultMaxInsns.
func Verify(p *Program, maxInsns int) error {
	_, err := Analyze(p, maxInsns)
	return err
}

// Analyze verifies p and returns the dataflow facts the verifier
// computed along the way. maxInsns of 0 uses DefaultMaxInsns.
func Analyze(p *Program, maxInsns int) (*Analysis, error) {
	if maxInsns <= 0 {
		maxInsns = DefaultMaxInsns
	}
	n := len(p.Insns)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty program", ErrVerification)
	}
	if n > maxInsns {
		return nil, fmt.Errorf("%w: program has %d instructions, limit %d", ErrVerification, n, maxInsns)
	}

	a := &Analysis{
		prog:     p,
		maxInsns: maxInsns,
		loopHead: make([]bool, n),
	}

	// Structural pass: opcode validity, jump targets, loop bounds.
	for pc, in := range p.Insns {
		if in.Op == OpInvalid || opNames[in.Op] == "" {
			return nil, verr(pc, "invalid opcode %d", in.Op)
		}
		if in.Dst >= numRegs || in.Src >= numRegs {
			return nil, verr(pc, "register out of range")
		}
		if isJump(in.Op) {
			tgt := pc + 1 + int(in.Off)
			if tgt < 0 || tgt >= n {
				return nil, verr(pc, "jump target %d out of range", tgt)
			}
			if tgt <= pc {
				if in.LoopBound <= 0 {
					return nil, verr(pc, "backward jump without a compile-time loop bound")
				}
				a.loopHead[tgt] = true
			}
		}
		switch in.Op {
		case OpDivImm, OpModImm:
			if in.Imm == 0 {
				return nil, verr(pc, "division by constant zero")
			}
		case OpLshImm, OpRshImm, OpArshImm:
			if in.Imm < 0 || in.Imm >= 64 {
				return nil, verr(pc, "shift amount %d out of range", in.Imm)
			}
		case OpLoadMapPtr:
			if in.Imm < 0 || in.Imm >= int64(len(p.Maps)) {
				return nil, verr(pc, "map index %d out of range (have %d maps)", in.Imm, len(p.Maps))
			}
		case OpCall:
			if _, ok := HelperByID(in.Imm); !ok {
				return nil, verr(pc, "unknown helper %d", in.Imm)
			}
		}
		// Fall-through off the end of the program.
		if pc == n-1 && in.Op != OpExit && in.Op != OpJa {
			return nil, verr(pc, "control flow falls off the end of the program")
		}
		if isCondJump(in.Op) && pc == n-1 {
			return nil, verr(pc, "conditional jump cannot be the last instruction")
		}
	}

	// Reachability from instruction 0 over the static CFG. Instructions
	// no path can ever reach are rejected outright, as in real eBPF.
	reach := make([]bool, n)
	stack := []int{0}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[pc] {
			continue
		}
		reach[pc] = true
		stack = append(stack, cfgSuccs(p.Insns[pc], pc)...)
	}
	for pc := range reach {
		if !reach[pc] {
			return nil, verr(pc, "unreachable instruction")
		}
	}

	// Abstract interpretation to a fixpoint, widening at loop heads.
	a.states = make([]absState, n)
	a.states[0] = entryState()
	work := []int{0}
	steps := 0
	for len(work) > 0 {
		steps++
		if steps > n*256 {
			return nil, fmt.Errorf("%w: abstract interpretation did not converge", ErrVerification)
		}
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		outs, err := step(p, pc, a.states[pc])
		if err != nil {
			return nil, err
		}
		for _, o := range outs {
			if a.states[o.pc].merge(&o.state, a.loopHead[o.pc]) {
				work = append(work, o.pc)
			}
		}
	}

	// Record conditional-edge feasibility from the final in-states.
	a.condTaken = make([]bool, n)
	a.condFall = make([]bool, n)
	for pc, in := range p.Insns {
		if !isCondJump(in.Op) || !a.states[pc].valid {
			continue
		}
		_, _, feasT, feasF, err := condStates(a.states[pc], in)
		if err != nil {
			// step already accepted this state; condStates cannot fail.
			feasT, feasF = true, true
		}
		a.condTaken[pc] = feasT
		a.condFall[pc] = feasF
	}
	return a, nil
}

// cfgSuccs returns the static control-flow successors of the instruction
// at pc (no feasibility pruning).
func cfgSuccs(in Insn, pc int) []int {
	switch {
	case in.Op == OpExit:
		return nil
	case in.Op == OpJa:
		return []int{pc + 1 + int(in.Off)}
	case isCondJump(in.Op):
		return []int{pc + 1, pc + 1 + int(in.Off)}
	default:
		return []int{pc + 1}
	}
}
