package bpf

import (
	"strings"
	"testing"
)

func findingsByRule(fs []Finding) map[string][]Finding {
	m := make(map[string][]Finding)
	for _, f := range fs {
		m[f.Rule] = append(m[f.Rule], f)
	}
	return m
}

func TestLintCleanProgram(t *testing.T) {
	p := NewBuilder("clean").
		Call(HelperKtime).
		Exit().
		MustBuild()
	fs, err := Lint(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("expected no findings, got %v", fs)
	}
}

func TestLintRules(t *testing.T) {
	p := NewBuilder("lint-all").
		StoreImm(R10, -8, 41). // dead store (shadowed below)
		StoreImm(R10, -8, 42).
		Load(R1, R10, -8).
		Mov(R2, 3). // dead code: R2 never read
		Mov(R0, 5).
		Jeq(R0, 5, "t"). // always taken
		Mov(R0, 99).     // unreachable
		Label("t").
		Call(HelperKtime). // dead helper result: R0 overwritten
		Mov(R0, 0).
		Exit().
		MustBuild()
	fs, err := Lint(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	by := findingsByRule(fs)
	for _, rule := range []string{RuleDeadStore, RuleDeadCode, RuleBranchAlways, RuleUnreachable, RuleDeadHelperResult} {
		if len(by[rule]) == 0 {
			t.Errorf("expected a %s finding, got %v", rule, fs)
		}
	}
	// Findings must be in ascending pc order.
	last := -1
	for _, f := range fs {
		if f.PC < last {
			t.Fatalf("findings out of order: %v", fs)
		}
		last = f.PC
	}
}

func TestLintBranchNeverTaken(t *testing.T) {
	p := NewBuilder("never").
		Mov(R0, 1).
		Jeq(R0, 2, "x").
		Exit().
		Label("x").
		Mov(R0, 9).
		Exit().
		MustBuild()
	fs, err := Lint(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	by := findingsByRule(fs)
	if len(by[RuleBranchNever]) != 1 {
		t.Fatalf("expected one branch-never-taken, got %v", fs)
	}
	if len(by[RuleUnreachable]) == 0 {
		t.Fatalf("expected unreachable target, got %v", fs)
	}
}

func TestLintConstFoldable(t *testing.T) {
	p := NewBuilder("fold").
		Mov(R0, 6).
		Mul(R0, 7). // const-foldable, result live
		Exit().
		MustBuild()
	fs, err := Lint(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	by := findingsByRule(fs)
	if len(by[RuleConstFoldable]) != 1 {
		t.Fatalf("expected one const-foldable, got %v", fs)
	}
	if by[RuleConstFoldable][0].Severity != SevInfo {
		t.Fatalf("const-foldable must be info severity: %v", fs)
	}
	if !strings.Contains(by[RuleConstFoldable][0].Message, "42") {
		t.Fatalf("message should name the folded value: %v", by[RuleConstFoldable][0])
	}
}

func TestLintUnusedMap(t *testing.T) {
	p := NewBuilder("maps")
	p.AddMap(NewArrayMap("unused", 8, 1))
	p.Mov(R0, 0).Exit()
	fs, err := Lint(p.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}
	by := findingsByRule(fs)
	if len(by[RuleUnusedMap]) != 1 {
		t.Fatalf("expected one unused-map, got %v", fs)
	}
	if f := by[RuleUnusedMap][0]; f.PC != -1 || !strings.Contains(f.Message, "unused") {
		t.Fatalf("unexpected unused-map finding: %+v", f)
	}
}

func TestLintRejectsUnverifiable(t *testing.T) {
	p := &Program{Name: "bad", Insns: []Insn{{Op: OpExit}}}
	if _, err := Lint(p, 0); err == nil {
		t.Fatal("expected verification error")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{PC: 3, Rule: RuleDeadCode, Severity: SevWarn, Message: "x"}
	if got := f.String(); got != "insn 3: warn: dead-code: x" {
		t.Fatalf("got %q", got)
	}
	f = Finding{PC: -1, Rule: RuleUnusedMap, Severity: SevWarn, Message: "y"}
	if got := f.String(); got != "warn: unused-map: y" {
		t.Fatalf("got %q", got)
	}
}
