package bpf

import (
	"encoding/binary"
	"math/rand"
)

// This file is the adversarial-input side of the verifier/VM contract
// (paper §5.1): a seeded, deterministic generator of Collector-shaped BPF
// programs, a wire codec for raw instruction streams, and a mutation
// engine. The fuzz targets in fuzz_test.go drive all three against the
// differential oracle "generator says valid ⇒ verifier accepts ⇒ VM runs
// without fault"; anything here that disagrees with the verifier is a bug
// in one of the two, which is exactly what the harness exists to find.

// Standard map-table indices used by generated and decoded fuzz programs.
// The set mirrors what TScout codegen wires into a Collector: hash state,
// an array, a recursion stack, a perf ring, and per-task storage.
const (
	genMapHash = iota
	genMapArray
	genMapStack
	genMapRing
	genMapPerTask
	genMapPerCPU
	numGenMaps
)

const (
	genHashKeySize   = 8
	genHashValueSize = 16
	genArrayValue    = 16
	genStackValue    = 8
)

// NewGenMaps builds a fresh instance of the standard fuzz map table. Each
// fuzz iteration gets its own maps so runs replay deterministically.
func NewGenMaps() []Map {
	return []Map{
		genMapHash:    NewHashMap("fuzz/hash", genHashKeySize, genHashValueSize, 16),
		genMapArray:   NewArrayMap("fuzz/array", genArrayValue, 4),
		genMapStack:   NewStackMap("fuzz/stack", genStackValue, 4),
		genMapRing:    NewPerfRingBuffer("fuzz/ring", 32),
		genMapPerTask: NewPerTaskMap("fuzz/pertask", genHashValueSize),
		genMapPerCPU:  NewPerCPURing("fuzz/percpu", 4, 8),
	}
}

// genReg mirrors the verifier's register lattice just closely enough for
// the generator to emit only instructions the verifier must accept.
type genReg struct {
	kind   regKind
	off    int64 // stack pointers: offset relative to R10
	mapIdx int32
}

type genState struct {
	regs      [numRegs]genReg
	stackInit [StackSize / 8]bool // word-granular, index 0 = offset -512
}

func genEntryState() genState {
	var s genState
	s.regs[R10] = genReg{kind: rkPtrStack}
	return s
}

// slotOff converts a stack word index (0..63) to its R10-relative offset.
func slotOff(w int) int32 { return int32(8*w) - StackSize }

// mergeGenState joins two control-flow paths the way the verifier's join
// does: registers keep their state only when both paths agree, scalars
// demote to unknown, and stack words stay initialized only when both paths
// initialized them.
func mergeGenState(a, b genState) genState {
	var out genState
	for i := range out.regs {
		ra, rb := a.regs[i], b.regs[i]
		switch {
		case ra == rb:
			out.regs[i] = ra
		case ra.kind == rkScalar && rb.kind == rkScalar:
			out.regs[i] = genReg{kind: rkScalar}
		default:
			out.regs[i] = genReg{} // rkUninit
		}
	}
	for i := range out.stackInit {
		out.stackInit[i] = a.stackInit[i] && b.stackInit[i]
	}
	return out
}

// progGen carries one generation run.
type progGen struct {
	rng      *rand.Rand
	b        *Builder
	st       genState
	labelN   int
	depth    int           // nesting depth of branch/loop constructs
	reserved [numRegs]bool // loop counters the body must not clobber
}

// GenProgram deterministically generates a valid-by-construction program
// from seed: the same (seed, steps) always yields the same program. The
// program uses the standard fuzz map table (NewGenMaps) and is built so
// that the verifier MUST accept it and the VM MUST run it to completion —
// the generator tracks a conservative mirror of the verifier's abstract
// state and only emits instructions legal in that state.
func GenProgram(seed int64, steps int) *Program {
	if steps < 1 {
		steps = 1
	}
	g := &progGen{
		rng: rand.New(rand.NewSource(seed)),
		b:   NewBuilder("fuzz/gen"),
		st:  genEntryState(),
	}
	for _, m := range NewGenMaps() {
		g.b.AddMap(m)
	}
	for i := 0; i < steps; i++ {
		g.step()
	}
	// Epilogue: R0 must be a scalar at exit.
	g.b.Mov(R0, g.smallImm()).Exit()
	return g.b.MustBuild()
}

func (g *progGen) label(prefix string) string {
	g.labelN++
	return prefix + "_" + itoa(g.labelN)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func (g *progGen) smallImm() int64 { return int64(g.rng.Intn(1024)) - 256 }

// scratchReg picks a general-purpose register (never R10, never a reserved
// loop counter).
func (g *progGen) scratchReg() Reg {
	for {
		r := Reg(g.rng.Intn(9) + 1) // R1..R9
		if !g.reserved[r] {
			return r
		}
	}
}

// scalarReg returns a register currently holding an initialized scalar,
// initializing one with a mov if none exists.
func (g *progGen) scalarReg() Reg {
	cands := make([]Reg, 0, numRegs)
	for r := Reg(0); r < numRegs; r++ {
		if r != R10 && !g.reserved[r] && g.st.regs[r].kind == rkScalar {
			cands = append(cands, r)
		}
	}
	if len(cands) > 0 {
		return cands[g.rng.Intn(len(cands))]
	}
	r := g.scratchReg()
	g.b.Mov(r, g.smallImm())
	g.st.regs[r] = genReg{kind: rkScalar}
	return r
}

// initSlot stores to stack word w (via R10), marking it initialized.
func (g *progGen) initSlot(w int) {
	if g.rng.Intn(2) == 0 {
		g.b.StoreImm(R10, slotOff(w), g.smallImm())
	} else {
		src := g.scalarReg()
		g.b.Store(R10, slotOff(w), src)
	}
	g.st.stackInit[w] = true
}

// initRange initializes n consecutive stack words starting at w.
func (g *progGen) initRange(w, n int) {
	for i := 0; i < n; i++ {
		if !g.st.stackInit[w+i] {
			g.initSlot(w + i)
		}
	}
}

func (g *progGen) randSlot() int { return g.rng.Intn(StackSize / 8) }

// initializedSlot returns a random initialized stack word, creating one
// when none exists yet.
func (g *progGen) initializedSlot() int {
	cands := make([]int, 0, StackSize/8)
	for w, ok := range g.st.stackInit {
		if ok {
			cands = append(cands, w)
		}
	}
	if len(cands) > 0 {
		return cands[g.rng.Intn(len(cands))]
	}
	w := g.randSlot()
	g.initSlot(w)
	return w
}

// step emits one random construct.
func (g *progGen) step() {
	choice := g.rng.Intn(100)
	switch {
	case choice < 14:
		g.genMovImm()
	case choice < 32:
		g.genALU()
	case choice < 44:
		g.genStackStoreLoad()
	case choice < 52:
		g.genPointerWalk()
	case choice < 62:
		if g.depth < 2 {
			g.genBranch()
		} else {
			g.genALU()
		}
	case choice < 70:
		if g.depth == 0 {
			g.genLoop()
		} else {
			g.genStackStoreLoad()
		}
	case choice < 78:
		g.genSimpleHelper()
	case choice < 86:
		g.genMapLookup()
	case choice < 92:
		g.genMapUpdate()
	case choice < 96:
		g.genPerfOutput()
	default:
		g.genStackMapOp()
	}
}

func (g *progGen) genMovImm() {
	r := g.scratchReg()
	g.b.Mov(r, g.smallImm())
	g.st.regs[r] = genReg{kind: rkScalar}
}

// genALU emits one scalar ALU operation with verifier-safe operands.
func (g *progGen) genALU() {
	dst := g.scalarReg()
	ops := []Op{OpAddImm, OpSubImm, OpMulImm, OpDivImm, OpModImm, OpAndImm,
		OpOrImm, OpXorImm, OpLshImm, OpRshImm, OpArshImm, OpNeg,
		OpAddReg, OpSubReg, OpMulReg, OpAndReg, OpOrReg, OpXorReg,
		OpLshReg, OpRshReg, OpArshReg, OpDivReg, OpModReg}
	op := ops[g.rng.Intn(len(ops))]
	in := Insn{Op: op, Dst: dst}
	switch op {
	case OpNeg:
	case OpDivImm, OpModImm:
		in.Imm = int64(g.rng.Intn(1000) + 1) // never the constant zero
	case OpLshImm, OpRshImm, OpArshImm:
		in.Imm = int64(g.rng.Intn(64))
	default:
		if isRegSrc(op) {
			src := g.scalarReg()
			if op == OpDivReg || op == OpModReg {
				// The verifier rejects division by a known-zero register;
				// pin the divisor to a known nonzero constant.
				g.b.Mov(src, int64(g.rng.Intn(100)+1))
				g.st.regs[src] = genReg{kind: rkScalar}
			}
			in.Src = src
		} else {
			in.Imm = g.smallImm()
		}
	}
	g.b.emit(in)
	g.st.regs[dst] = genReg{kind: rkScalar}
}

func (g *progGen) genStackStoreLoad() {
	if g.rng.Intn(2) == 0 {
		g.initSlot(g.randSlot())
		return
	}
	w := g.initializedSlot()
	dst := g.scratchReg()
	g.b.Load(dst, R10, slotOff(w))
	g.st.regs[dst] = genReg{kind: rkScalar}
}

// genPointerWalk exercises pointer arithmetic: derive a stack pointer from
// R10, move it around with constant add/sub, and access through it.
func (g *progGen) genPointerWalk() {
	r := g.scratchReg()
	g.b.MovReg(r, R10)
	off := int64(0)
	for hops := g.rng.Intn(3) + 1; hops > 0; hops-- {
		d := int64(8 * (g.rng.Intn(StackSize/8) + 1))
		if g.rng.Intn(2) == 0 && off-d >= -StackSize {
			g.b.Sub(r, d)
			off -= d
		} else if off+d <= 0 {
			g.b.Add(r, d)
			off += d
		}
	}
	if off > -8 { // need room for one 8-byte access below R10
		g.b.Sub(r, 8)
		off -= 8
	}
	g.st.regs[r] = genReg{kind: rkPtrStack, off: off}
	w := int(off+StackSize) / 8
	if g.rng.Intn(2) == 0 {
		// Reserve r so scalarReg's init fallback cannot clobber the
		// pointer we are about to store through.
		g.reserved[r] = true
		src := g.scalarReg()
		g.reserved[r] = false
		g.b.Store(r, 0, src)
		g.st.stackInit[w] = true
	} else if g.st.stackInit[w] {
		dst := g.scratchReg()
		g.b.Load(dst, r, 0)
		g.st.regs[dst] = genReg{kind: rkScalar}
	}
}

// genBranch emits an if/else over a scalar, generating both arms and
// merging the mirrored state the way the verifier joins them.
func (g *progGen) genBranch() {
	cond := g.scalarReg()
	lElse, lEnd := g.label("else"), g.label("end")
	jumps := []func(Reg, int64, string) *Builder{g.b.Jeq, g.b.Jne, g.b.Jgt, g.b.Jge, g.b.Jlt, g.b.Jle}
	jumps[g.rng.Intn(len(jumps))](cond, g.smallImm(), lElse)

	g.depth++
	pre := g.st
	for i := g.rng.Intn(3) + 1; i > 0; i-- {
		g.genLinearStep()
	}
	thenSt := g.st
	g.b.Ja(lEnd)
	g.b.Label(lElse)
	g.st = pre
	for i := g.rng.Intn(3); i > 0; i-- {
		g.genLinearStep()
	}
	g.b.Label(lEnd)
	g.st = mergeGenState(thenSt, g.st)
	g.depth--
}

// genLinearStep emits a construct safe inside branch arms and loop bodies:
// no nested control flow.
func (g *progGen) genLinearStep() {
	switch g.rng.Intn(4) {
	case 0:
		g.genMovImm()
	case 1:
		g.genALU()
	case 2:
		g.genStackStoreLoad()
	default:
		g.genSimpleHelper()
	}
}

// genLoop emits a counted loop with a declared compile-time bound (the
// §5.1 bounded-loop rule). The body is generated against a demoted state:
// only R10 and the counter survive the back-edge join, so the body must
// re-establish anything it uses — exactly what the verifier's fixpoint
// demands.
func (g *progGen) genLoop() {
	// The counter lives in a callee-saved register (helper calls in the
	// body abstractly clobber R1-R5) and is reserved so the body cannot
	// redefine it — otherwise the declared bound would be a lie and the
	// loop could spin until the runtime budget kills it.
	cnt := Reg(g.rng.Intn(4)) + R6
	for g.reserved[cnt] {
		cnt = Reg(g.rng.Intn(4)) + R6
	}
	g.reserved[cnt] = true
	defer func() { g.reserved[cnt] = false }()
	n := int64(g.rng.Intn(6) + 1)
	g.b.Mov(cnt, n)
	top := g.label("loop")
	g.b.Label(top)

	pre := g.st
	// Demote: at the loop head the verifier joins the entry state with the
	// back-edge state; registers the body redefines survive, everything
	// else must be assumed dead inside the body.
	var demoted genState
	demoted.regs[R10] = pre.regs[R10]
	demoted.regs[cnt] = genReg{kind: rkScalar}
	demoted.stackInit = pre.stackInit
	g.st = demoted

	g.depth++
	for i := g.rng.Intn(3) + 1; i > 0; i-- {
		g.genLinearStep()
	}
	g.depth--
	bodyEnd := g.st

	g.b.Sub(cnt, 1)
	g.b.JneLoop(cnt, 0, top, int32(n))

	// After the loop the verifier's state is the body applied to the
	// fixpoint loop-head state. The body-end mirror was computed from the
	// demoted entry, which under-approximates that fixpoint, so it is a
	// safe (conservative) post-state: anything it believes initialized
	// really is on every path reaching the exit edge. Registers the body
	// clobbered-then-abandoned stay uninit here even if they were live
	// before the loop — restoring pre-loop kinds for them would be
	// optimistic and generate invalid programs.
	post := bodyEnd
	post.regs[cnt] = genReg{kind: rkScalar}
	g.st = post
}

// genSimpleHelper calls one of the scalar-argument helpers.
func (g *progGen) genSimpleHelper() {
	type h struct {
		id    int64
		nargs int
	}
	hs := []h{
		{HelperGetPID, 0}, {HelperKtime, 0}, {HelperGetArg, 1},
		{HelperTracePrintk, 1}, {HelperReadIOAC, 1}, {HelperReadSock, 1},
		{HelperReadCounter, 2},
	}
	pick := hs[g.rng.Intn(len(hs))]
	argRegs := []Reg{R1, R2, R3, R4, R5}
	for i := 0; i < pick.nargs; i++ {
		g.b.Mov(argRegs[i], int64(g.rng.Intn(6)))
		g.st.regs[argRegs[i]] = genReg{kind: rkScalar}
	}
	g.b.Call(pick.id)
	g.helperClobber()
	g.st.regs[R0] = genReg{kind: rkScalar}
}

func (g *progGen) helperClobber() {
	for _, r := range []Reg{R1, R2, R3, R4, R5} {
		g.st.regs[r] = genReg{}
	}
}

// mapAndKey picks a keyed map and prepares the key slot, returning the map
// index, key word, and key size.
func (g *progGen) mapAndKey() (mapIdx, keyWord, keySize int) {
	switch g.rng.Intn(3) {
	case 0:
		mapIdx, keySize = genMapHash, genHashKeySize
	case 1:
		mapIdx, keySize = genMapArray, 8
	default:
		mapIdx, keySize = genMapPerTask, 8
	}
	keyWord = g.rng.Intn(StackSize/8 - 1)
	// Array/per-task keys index small spaces; keep values small so lookups
	// sometimes hit.
	g.b.StoreImm(R10, slotOff(keyWord), int64(g.rng.Intn(8)))
	g.st.stackInit[keyWord] = true
	return mapIdx, keyWord, keySize
}

func (g *progGen) emitStackPtr(dst Reg, w int) {
	g.b.MovReg(dst, R10).Sub(dst, int64(StackSize-8*w))
	g.st.regs[dst] = genReg{kind: rkPtrStack, off: int64(8*w) - StackSize}
}

// genMapLookup emits lookup + null check + access through the value
// pointer, the core pattern of every Collector program.
func (g *progGen) genMapLookup() {
	mapIdx, keyWord, _ := g.mapAndKey()
	g.b.LoadMapPtr(R1, mapIdx)
	g.emitStackPtr(R2, keyWord)
	g.b.Call(HelperMapLookup)
	g.helperClobber()

	lNull := g.label("null")
	g.b.Jeq(R0, 0, lNull)
	// Non-null arm: read and write through the value pointer.
	valSize := int64(16) // hash/array/per-task value sizes in the fuzz table
	tmp := g.scratchReg()
	off := int32(8 * g.rng.Intn(int(valSize/8)))
	g.b.Load(tmp, R0, off)
	g.b.Add(tmp, 1)
	g.b.Store(R0, off, tmp)
	g.b.Label(lNull)
	// Join: R0 is a scalar 0 on one path and a value pointer on the other.
	g.st.regs[R0] = genReg{}
	g.st.regs[tmp] = genReg{}
}

func (g *progGen) genMapUpdate() {
	mapIdx, keyWord, _ := g.mapAndKey()
	valWord := g.rng.Intn(StackSize/8 - 2)
	g.initRange(valWord, 2) // 16-byte values = 2 words
	g.b.LoadMapPtr(R1, mapIdx)
	g.emitStackPtr(R2, keyWord)
	g.emitStackPtr(R3, valWord)
	g.b.Call(HelperMapUpdate)
	g.helperClobber()
	g.st.regs[R0] = genReg{kind: rkScalar}
}

func (g *progGen) genPerfOutput() {
	n := g.rng.Intn(4) + 1
	w := g.rng.Intn(StackSize/8 - n)
	g.initRange(w, n)
	// Either perf-output target kind verifies; alternate between the
	// shared ring and the per-CPU ring set.
	ring := int(genMapRing)
	if g.rng.Intn(2) == 1 {
		ring = genMapPerCPU
	}
	g.b.LoadMapPtr(R1, ring)
	g.emitStackPtr(R2, w)
	g.b.Mov(R3, int64(8*n))
	g.st.regs[R3] = genReg{kind: rkScalar}
	g.b.Call(HelperPerfOutput)
	g.helperClobber()
	g.st.regs[R0] = genReg{kind: rkScalar}
}

func (g *progGen) genStackMapOp() {
	w := g.rng.Intn(StackSize / 8)
	if g.rng.Intn(2) == 0 {
		g.initRange(w, 1)
		g.b.LoadMapPtr(R1, genMapStack)
		g.emitStackPtr(R2, w)
		g.b.Call(HelperStackPush)
	} else {
		// Pop fills its buffer only on success, so it does not count as
		// initializing the word (the verifier agrees). Pre-initialize it
		// instead: later reads stay legal, and the store→pop→load shape
		// this produces is exactly the optimizer's hardest aliasing case.
		g.initRange(w, 1)
		g.b.LoadMapPtr(R1, genMapStack)
		g.emitStackPtr(R2, w)
		g.b.Call(HelperStackPop)
	}
	g.helperClobber()
	g.st.regs[R0] = genReg{kind: rkScalar}
}

// --- raw instruction stream wire codec -------------------------------------
//
// Fuzz corpora store programs as flat byte streams so go-fuzz mutation
// operates on something meaningful. One instruction is 20 little-endian
// bytes: op, dst, src, pad, off int32, loopBound int32, imm int64.

// InsnWireBytes is the encoded size of one instruction.
const InsnWireBytes = 20

// maxDecodedInsns caps DecodeInsns output so fuzz inputs stay fast.
const maxDecodedInsns = 512

// EncodeInsns flattens an instruction slice to the fuzz wire form.
func EncodeInsns(insns []Insn) []byte {
	out := make([]byte, 0, len(insns)*InsnWireBytes)
	var rec [InsnWireBytes]byte
	for _, in := range insns {
		rec[0] = byte(in.Op)
		rec[1] = byte(in.Dst)
		rec[2] = byte(in.Src)
		rec[3] = 0
		binary.LittleEndian.PutUint32(rec[4:], uint32(in.Off))
		binary.LittleEndian.PutUint32(rec[8:], uint32(in.LoopBound))
		binary.LittleEndian.PutUint64(rec[12:], uint64(in.Imm))
		out = append(out, rec[:]...)
	}
	return out
}

// DecodeInsns parses the fuzz wire form, ignoring any trailing partial
// record. It never rejects: malformed fields become instructions the
// verifier must reject (that is the point).
func DecodeInsns(data []byte) []Insn {
	n := len(data) / InsnWireBytes
	if n > maxDecodedInsns {
		n = maxDecodedInsns
	}
	insns := make([]Insn, n)
	for i := 0; i < n; i++ {
		rec := data[i*InsnWireBytes:]
		insns[i] = Insn{
			Op:        Op(rec[0]),
			Dst:       Reg(rec[1]),
			Src:       Reg(rec[2]),
			Off:       int32(binary.LittleEndian.Uint32(rec[4:])),
			LoopBound: int32(binary.LittleEndian.Uint32(rec[8:])),
			Imm:       int64(binary.LittleEndian.Uint64(rec[12:])),
		}
	}
	return insns
}

// MutateInsns applies a deterministic sequence of small mutations driven
// by data: every 4 bytes select a position and a tweak (opcode, register,
// offset, immediate, loop bound, duplicate, delete). The result usually no
// longer satisfies the generator's validity argument — which is what makes
// it a useful verifier input.
func MutateInsns(insns []Insn, data []byte) []Insn {
	out := append([]Insn(nil), insns...)
	// Cap the number of applied mutations: unbounded fuzz inputs would
	// otherwise make the duplicate action quadratic in len(data).
	if len(data) > 4*256 {
		data = data[:4*256]
	}
	for i := 0; i+4 <= len(data); i += 4 {
		if len(out) == 0 {
			break
		}
		pos := int(data[i+1]) % len(out)
		val := int64(int16(uint16(data[i+2]) | uint16(data[i+3])<<8))
		switch data[i] % 8 {
		case 0:
			out[pos].Op = Op(byte(val))
		case 1:
			out[pos].Dst = Reg(byte(val) % 16)
		case 2:
			out[pos].Src = Reg(byte(val) % 16)
		case 3:
			out[pos].Off = int32(val)
		case 4:
			out[pos].Imm = val
		case 5:
			out[pos].LoopBound = int32(val)
		case 6: // duplicate an instruction in place
			if len(out) < maxDecodedInsns {
				out = append(out[:pos+1], out[pos:]...)
			}
		case 7: // delete an instruction
			out = append(out[:pos], out[pos+1:]...)
		}
	}
	return out
}
