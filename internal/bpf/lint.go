package bpf

import "fmt"

// Lint runs the same fixpoint facts the verifier and optimizer use and
// reports *suspicious but legal* constructs as structured diagnostics,
// the queryable analysis surface TAAF argues for: a bare accept/reject
// bit hides exactly the information a Codegen author needs to see.

// Severity ranks a lint finding.
type Severity uint8

// Severities.
const (
	SevInfo Severity = iota
	SevWarn
)

func (s Severity) String() string {
	if s == SevInfo {
		return "info"
	}
	return "warn"
}

// Lint rule names.
const (
	RuleDeadStore        = "dead-store"
	RuleDeadCode         = "dead-code"
	RuleDeadHelperResult = "dead-helper-result"
	RuleBranchAlways     = "branch-always-taken"
	RuleBranchNever      = "branch-never-taken"
	RuleUnreachable      = "unreachable"
	RuleUnusedMap        = "unused-map"
	RuleConstFoldable    = "const-foldable"
)

// Finding is one lint diagnostic, anchored at a pc (or a map index for
// unused-map, with PC = -1).
type Finding struct {
	PC       int
	Rule     string
	Severity Severity
	Message  string
}

func (f Finding) String() string {
	if f.PC < 0 {
		return fmt.Sprintf("%s: %s: %s", f.Severity, f.Rule, f.Message)
	}
	return fmt.Sprintf("insn %d: %s: %s: %s", f.PC, f.Severity, f.Rule, f.Message)
}

// Lint verifies p and reports diagnostics in deterministic order
// (ascending pc, then program-level findings). A program that fails
// verification returns the verification error instead.
func Lint(p *Program, maxInsns int) ([]Finding, error) {
	a, err := Analyze(p, maxInsns)
	if err != nil {
		return nil, err
	}
	lv := a.Liveness()
	var out []Finding
	add := func(pc int, rule string, sev Severity, format string, args ...any) {
		out = append(out, Finding{PC: pc, Rule: rule, Severity: sev, Message: fmt.Sprintf(format, args...)})
	}

	usedMaps := make([]bool, len(p.Maps))
	for pc, in := range p.Insns {
		if !a.Reached(pc) {
			add(pc, RuleUnreachable, SevWarn, "no feasible path reaches %q", in.String())
			continue
		}
		if in.Op == OpLoadMapPtr {
			usedMaps[in.Imm] = true
		}
		switch {
		case isCondJump(in.Op):
			taken, fall := a.CondEdges(pc)
			if taken && !fall {
				add(pc, RuleBranchAlways, SevWarn, "%q is always taken", in.String())
			}
			if !taken && fall {
				add(pc, RuleBranchNever, SevWarn, "%q is never taken", in.String())
			}
		case isALU(in.Op) && in.Op != OpMovImm:
			if lv.LiveOutRegs(pc)&regBit(in.Dst) == 0 {
				add(pc, RuleDeadCode, SevWarn, "result of %q is never read", in.String())
			} else if c, ok := a.foldableConst(pc, in); ok {
				add(pc, RuleConstFoldable, SevInfo, "%q always evaluates to %d", in.String(), c)
			}
		case in.Op == OpMovImm, in.Op == OpMovReg, in.Op == OpLoad, in.Op == OpLoadMapPtr:
			if lv.LiveOutRegs(pc)&regBit(in.Dst) == 0 {
				add(pc, RuleDeadCode, SevWarn, "result of %q is never read", in.String())
			}
		case in.Op == OpStore, in.Op == OpStoreImm:
			base := a.states[pc].regs[in.Dst]
			if base.kind != rkPtrStack || base.lo != base.hi {
				continue
			}
			lo := base.lo + int64(in.Off)
			dead := true
			for i := int64(0); i < 8; i++ {
				if lv.LiveOutStackByte(pc, int(lo+i+StackSize)) {
					dead = false
					break
				}
			}
			if dead {
				add(pc, RuleDeadStore, SevWarn, "stack bytes written by %q are never read", in.String())
			}
		case in.Op == OpCall:
			spec, _ := HelperByID(in.Imm)
			if spec.Pure && lv.LiveOutRegs(pc)&regBit(R0) == 0 {
				add(pc, RuleDeadHelperResult, SevWarn, "result of pure helper %s is never read", spec.Name)
			}
		}
	}
	for i, used := range usedMaps {
		if !used {
			add(-1, RuleUnusedMap, SevWarn, "map %d (%q) is never referenced", i, p.Maps[i].Name())
		}
	}
	return out, nil
}
