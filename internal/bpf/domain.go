package bpf

import "math/bits"

// This file implements the scalar abstract domain the verifier interprets
// programs over: a product of an unsigned interval [Lo, Hi] and a
// known-bits "tnum" (tracked number), mirroring the two domains the real
// eBPF verifier carries per register (umin/umax and struct tnum). The
// interval proves range facts ("this offset is < 64"), the tnum proves
// alignment and bit-pattern facts ("bits 0-2 are zero"); reduce()
// exchanges information between them after every transfer so each domain
// sharpens the other.
//
// All transfer functions are sound over-approximations of evalALU: for
// every concrete a in gamma(A) and b in gamma(B),
// evalALU(op, a, b) in gamma(transfer(op, A, B)). domain_test.go checks
// this by brute force over small bit-widths for every ALU opcode.

// Tnum is a tracked number: bits set in Mask are unknown, bits clear in
// Mask carry the value in Val. Invariant: Val&Mask == 0.
type Tnum struct {
	Val  uint64
	Mask uint64
}

func tnConst(v uint64) Tnum { return Tnum{Val: v} }
func tnUnknown() Tnum       { return Tnum{Mask: ^uint64(0)} }

// IsConst reports whether every bit is known.
func (t Tnum) IsConst() bool { return t.Mask == 0 }

// Contains reports whether concrete value v is represented by t.
func (t Tnum) Contains(v uint64) bool { return v&^t.Mask == t.Val }

// tnJoin is the lattice union: bits that differ or are unknown in either
// operand become unknown.
func tnJoin(a, b Tnum) Tnum {
	mu := a.Mask | b.Mask | (a.Val ^ b.Val)
	return Tnum{Val: a.Val &^ mu, Mask: mu}
}

// tnIntersect returns the meet of two tnums; ok is false when their known
// bits contradict (empty intersection).
func tnIntersect(a, b Tnum) (Tnum, bool) {
	if (a.Val^b.Val)&^a.Mask&^b.Mask != 0 {
		return Tnum{}, false
	}
	mask := a.Mask & b.Mask
	return Tnum{Val: (a.Val | b.Val) &^ mask, Mask: mask}, true
}

// tnAdd/tnSub follow the kernel's carry/borrow propagation construction.
func tnAdd(a, b Tnum) Tnum {
	sm := a.Mask + b.Mask
	sv := a.Val + b.Val
	sigma := sm + sv
	chi := sigma ^ sv
	mu := chi | a.Mask | b.Mask
	return Tnum{Val: sv &^ mu, Mask: mu}
}

func tnSub(a, b Tnum) Tnum {
	dv := a.Val - b.Val
	alpha := dv + a.Mask
	beta := dv - b.Mask
	chi := alpha ^ beta
	mu := chi | a.Mask | b.Mask
	return Tnum{Val: dv &^ mu, Mask: mu}
}

func tnAnd(a, b Tnum) Tnum {
	alpha := a.Val | a.Mask
	beta := b.Val | b.Mask
	v := a.Val & b.Val
	return Tnum{Val: v, Mask: alpha & beta &^ v}
}

func tnOr(a, b Tnum) Tnum {
	v := a.Val | b.Val
	mu := a.Mask | b.Mask
	return Tnum{Val: v, Mask: mu &^ v}
}

func tnXor(a, b Tnum) Tnum {
	v := a.Val ^ b.Val
	mu := a.Mask | b.Mask
	return Tnum{Val: v &^ mu, Mask: mu}
}

// tnMul keeps only the guaranteed-zero low bits: the product has at least
// as many trailing zeros as both factors combined. A full HMA-style
// multiply (as in the kernel) would be sharper but is not needed for the
// alignment facts Collector programs rely on.
func tnMul(a, b Tnum) Tnum {
	if a.IsConst() && b.IsConst() {
		return tnConst(a.Val * b.Val)
	}
	tz := bits.TrailingZeros64(a.Val|a.Mask) + bits.TrailingZeros64(b.Val|b.Mask)
	if tz >= 64 {
		return tnConst(0)
	}
	return Tnum{Val: 0, Mask: ^uint64(0) << tz}
}

func tnLsh(a Tnum, s uint64) Tnum { return Tnum{Val: a.Val << s, Mask: a.Mask << s} }
func tnRsh(a Tnum, s uint64) Tnum { return Tnum{Val: a.Val >> s, Mask: a.Mask >> s} }

// tnArsh duplicates the top bit of both halves: a known sign bit extends
// known bits, an unknown sign bit extends unknown bits. The Val/Mask
// disjointness invariant is preserved because the sign bit is set in at
// most one of the two.
func tnArsh(a Tnum, s uint64) Tnum {
	return Tnum{Val: uint64(int64(a.Val) >> s), Mask: uint64(int64(a.Mask) >> s)}
}

func tnNeg(a Tnum) Tnum { return tnSub(tnConst(0), a) }

// VReg is the product abstract value of one scalar register: an unsigned
// interval and a tnum, kept mutually reduced. The zero value is NOT valid;
// use vrConst/vrRange/vrTop.
type VReg struct {
	Lo, Hi uint64 // unsigned inclusive bounds, Lo <= Hi
	TN     Tnum
}

func vrTop() VReg           { return VReg{Lo: 0, Hi: ^uint64(0), TN: tnUnknown()} }
func vrConst(v uint64) VReg { return VReg{Lo: v, Hi: v, TN: tnConst(v)} }
func vrRange(lo, hi uint64) VReg {
	if lo > hi {
		lo, hi = hi, lo
	}
	return VReg{Lo: lo, Hi: hi, TN: tnFromRange(lo, hi)}.reduce()
}

// tnFromRange derives known high bits from an interval: every bit above
// the highest bit where lo and hi differ is common to all values between.
func tnFromRange(lo, hi uint64) Tnum {
	x := lo ^ hi
	if x == 0 {
		return tnConst(lo)
	}
	mask := uint64(1)<<bits.Len64(x) - 1
	return Tnum{Val: lo &^ mask, Mask: mask}
}

// IsConst reports whether the value is a single known constant.
func (v VReg) IsConst() bool { return v.Lo == v.Hi }

// Const returns the constant (meaningful only when IsConst).
func (v VReg) Const() uint64 { return v.Lo }

// Contains reports whether concrete value x is represented.
func (v VReg) Contains(x uint64) bool {
	return x >= v.Lo && x <= v.Hi && v.TN.Contains(x)
}

// reduce exchanges facts between the interval and the tnum. Transfers on
// non-empty inputs cannot produce an empty meet, but reduce degrades
// gracefully (keeps the wider component) if it ever would.
func (v VReg) reduce() VReg {
	// Tnum bounds the interval: value <= x <= value|mask.
	if v.TN.Val > v.Lo {
		v.Lo = v.TN.Val
	}
	if hi := v.TN.Val | v.TN.Mask; hi < v.Hi {
		v.Hi = hi
	}
	if v.Lo > v.Hi {
		// Contradiction; callers detect emptiness via refine, never here.
		return vrTop()
	}
	// The interval bounds the tnum's high bits.
	if tn, ok := tnIntersect(v.TN, tnFromRange(v.Lo, v.Hi)); ok {
		v.TN = tn
	}
	if v.TN.Val > v.Lo {
		v.Lo = v.TN.Val
	}
	return v
}

// vrJoin is the lattice union (interval hull, tnum union).
func vrJoin(a, b VReg) VReg {
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	return VReg{Lo: lo, Hi: hi, TN: tnJoin(a.TN, b.TN)}.reduce()
}

// vrWiden accelerates convergence at loop heads: any bound that moved
// since the previous visit jumps straight to its extreme. The tnum join
// ascends at most 64 steps on its own, so it is not widened.
func vrWiden(old, inc VReg) VReg {
	j := vrJoin(old, inc)
	if j.Lo < old.Lo {
		j.Lo = 0
	}
	if j.Hi > old.Hi {
		j.Hi = ^uint64(0)
	}
	return j.reduce()
}

// maxOrBound returns the tightest power-of-two-minus-one bound covering
// a|b for all a <= aHi, b <= bHi.
func maxOrBound(aHi, bHi uint64) uint64 {
	n := bits.Len64(aHi | bHi)
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<n - 1
}

// vrTransfer is the abstract counterpart of evalALU: it computes a sound
// VReg for "dst = dst op src". Callers guarantee op is a scalar ALU op.
func vrTransfer(op Op, a, b VReg) VReg {
	// Two singletons: the abstract result is exactly the concrete one.
	// This makes constant folding complete by construction for every op
	// (the per-op cases below stay interval-sound but are not always
	// singleton-exact, e.g. mod).
	if a.IsConst() && b.IsConst() {
		return vrConst(uint64(evalALU(op, int64(a.Lo), int64(b.Lo))))
	}
	switch op {
	case OpMovImm, OpMovReg:
		return b
	case OpNeg:
		out := vrTop()
		out.TN = tnNeg(a.TN)
		if a.IsConst() {
			return vrConst(-a.Lo)
		}
		if a.Lo > 0 {
			out.Lo, out.Hi = -a.Hi, -a.Lo
		}
		return out.reduce()
	case OpAddImm, OpAddReg:
		out := VReg{TN: tnAdd(a.TN, b.TN)}
		if _, carry := bits.Add64(a.Hi, b.Hi, 0); carry == 0 {
			out.Lo, out.Hi = a.Lo+b.Lo, a.Hi+b.Hi
		} else {
			out.Lo, out.Hi = 0, ^uint64(0)
		}
		return out.reduce()
	case OpSubImm, OpSubReg:
		out := VReg{TN: tnSub(a.TN, b.TN)}
		if a.Lo >= b.Hi {
			out.Lo, out.Hi = a.Lo-b.Hi, a.Hi-b.Lo
		} else {
			out.Lo, out.Hi = 0, ^uint64(0)
		}
		return out.reduce()
	case OpMulImm, OpMulReg:
		out := VReg{Lo: 0, Hi: ^uint64(0), TN: tnMul(a.TN, b.TN)}
		if hi, _ := bits.Mul64(a.Hi, b.Hi); hi == 0 {
			out.Lo, out.Hi = a.Lo*b.Lo, a.Hi*b.Hi
		}
		return out.reduce()
	case OpDivImm, OpDivReg:
		// Division by zero yields zero (evalALU), so a zero-capable
		// divisor pulls the lower bound to 0.
		out := VReg{TN: tnUnknown()}
		if b.Lo > 0 {
			out.Lo, out.Hi = a.Lo/b.Hi, a.Hi/b.Lo
		} else {
			out.Lo, out.Hi = 0, a.Hi
		}
		return out.reduce()
	case OpModImm, OpModReg:
		out := VReg{TN: tnUnknown()}
		switch {
		case b.Hi == 0: // constant zero divisor: defined as 0
			return vrConst(0)
		case b.Lo > 0 && a.Hi < b.Lo: // a < b always: identity
			out.Lo, out.Hi = a.Lo, a.Hi
		default:
			out.Lo = 0
			out.Hi = b.Hi - 1
			if a.Hi < out.Hi {
				out.Hi = a.Hi
			}
		}
		return out.reduce()
	case OpAndImm, OpAndReg:
		out := VReg{Lo: 0, TN: tnAnd(a.TN, b.TN)}
		out.Hi = a.Hi
		if b.Hi < out.Hi {
			out.Hi = b.Hi
		}
		return out.reduce()
	case OpOrImm, OpOrReg:
		out := VReg{TN: tnOr(a.TN, b.TN)}
		out.Lo = a.Lo
		if b.Lo > out.Lo {
			out.Lo = b.Lo
		}
		out.Hi = maxOrBound(a.Hi, b.Hi)
		return out.reduce()
	case OpXorImm, OpXorReg:
		return VReg{Lo: 0, Hi: maxOrBound(a.Hi, b.Hi), TN: tnXor(a.TN, b.TN)}.reduce()
	case OpLshImm, OpLshReg:
		if b.IsConst() {
			s := b.Lo & 63
			out := VReg{Lo: 0, Hi: ^uint64(0), TN: tnLsh(a.TN, s)}
			if uint64(bits.LeadingZeros64(a.Hi|1)) >= s {
				out.Lo, out.Hi = a.Lo<<s, a.Hi<<s
			}
			return out.reduce()
		}
		if b.Hi < 64 && uint64(bits.LeadingZeros64(a.Hi|1)) >= b.Hi {
			return VReg{Lo: a.Lo << b.Lo, Hi: a.Hi << b.Hi, TN: tnUnknown()}.reduce()
		}
		return vrTop()
	case OpRshImm, OpRshReg:
		if b.IsConst() {
			s := b.Lo & 63
			return VReg{Lo: a.Lo >> s, Hi: a.Hi >> s, TN: tnRsh(a.TN, s)}.reduce()
		}
		if b.Hi < 64 {
			return VReg{Lo: a.Lo >> b.Hi, Hi: a.Hi >> b.Lo, TN: tnUnknown()}.reduce()
		}
		return vrTop()
	case OpArshImm, OpArshReg:
		const sign = uint64(1) << 63
		if b.IsConst() {
			s := b.Lo & 63
			out := VReg{Lo: 0, Hi: ^uint64(0), TN: tnArsh(a.TN, s)}
			switch {
			case a.Hi < sign: // sign bit known clear: behaves as rsh
				out.Lo, out.Hi = a.Lo>>s, a.Hi>>s
			case a.Lo >= sign: // sign bit known set: order-preserving
				out.Lo = uint64(int64(a.Lo) >> s)
				out.Hi = uint64(int64(a.Hi) >> s)
			}
			return out.reduce()
		}
		if b.Hi < 64 {
			switch {
			case a.Hi < sign:
				return VReg{Lo: a.Lo >> b.Hi, Hi: a.Hi >> b.Lo, TN: tnUnknown()}.reduce()
			case a.Lo >= sign:
				return VReg{
					Lo: uint64(int64(a.Lo) >> (b.Lo & 63)),
					Hi: uint64(int64(a.Hi) >> (b.Hi & 63)),
					TN: tnUnknown(),
				}.reduce()
			}
		}
		return vrTop()
	}
	return vrTop()
}

// Branch relations in canonical unsigned form.
type vrRel uint8

const (
	relEQ vrRel = iota
	relNE
	relLT // a < b
	relLE
	relGT
	relGE
	relSET  // a & b != 0
	relNSET // a & b == 0
	// relNone is the "no known relation" sentinel for jump opcodes this
	// file does not model: vrRefine narrows nothing and both edges stay
	// feasible, so an op added without updating relFor degrades to
	// no-refinement instead of silently pruning with wrong semantics.
	relNone
)

// relFor maps a conditional jump opcode to the relation that holds on the
// taken edge; negRel gives the fall-through relation.
func relFor(op Op) vrRel {
	switch op {
	case OpJeqImm, OpJeqReg:
		return relEQ
	case OpJneImm, OpJneReg:
		return relNE
	case OpJgtImm, OpJgtReg:
		return relGT
	case OpJgeImm, OpJgeReg:
		return relGE
	case OpJltImm, OpJltReg:
		return relLT
	case OpJleImm, OpJleReg:
		return relLE
	case OpJsetImm:
		return relSET
	}
	return relNone
}

func negRel(r vrRel) vrRel {
	switch r {
	case relEQ:
		return relNE
	case relNE:
		return relEQ
	case relLT:
		return relGE
	case relLE:
		return relGT
	case relGT:
		return relLE
	case relGE:
		return relLT
	case relSET:
		return relNSET
	case relNSET:
		return relSET
	}
	return relNone
}

// vrRefine narrows a and b under the assumption "a rel b". feasible is
// false when the relation cannot hold for any represented pair, proving
// the corresponding branch edge dead.
func vrRefine(rel vrRel, a, b VReg) (ra, rb VReg, feasible bool) {
	switch rel {
	case relEQ:
		lo, hi := a.Lo, a.Hi
		if b.Lo > lo {
			lo = b.Lo
		}
		if b.Hi < hi {
			hi = b.Hi
		}
		if lo > hi {
			return a, b, false
		}
		tn, ok := tnIntersect(a.TN, b.TN)
		if !ok {
			return a, b, false
		}
		m := VReg{Lo: lo, Hi: hi, TN: tn}.reduce()
		return m, m, true
	case relNE:
		if a.IsConst() && b.IsConst() && a.Lo == b.Lo {
			return a, b, false
		}
		if b.IsConst() {
			if a.Lo == b.Lo {
				a.Lo++
			}
			if a.Hi == b.Lo {
				a.Hi--
			}
			if a.Lo > a.Hi {
				return a, b, false
			}
			a = a.reduce()
		}
		if a.IsConst() {
			if b.Lo == a.Lo {
				b.Lo++
			}
			if b.Hi == a.Lo {
				b.Hi--
			}
			if b.Lo > b.Hi {
				return a, b, false
			}
			b = b.reduce()
		}
		return a, b, true
	case relLT:
		if a.Lo >= b.Hi {
			return a, b, false
		}
		if b.Hi-1 < a.Hi {
			a.Hi = b.Hi - 1
		}
		if a.Lo+1 > b.Lo {
			b.Lo = a.Lo + 1
		}
		return a.reduce(), b.reduce(), true
	case relLE:
		if a.Lo > b.Hi {
			return a, b, false
		}
		if b.Hi < a.Hi {
			a.Hi = b.Hi
		}
		if a.Lo > b.Lo {
			b.Lo = a.Lo
		}
		return a.reduce(), b.reduce(), true
	case relGT:
		rb2, ra2, ok := vrRefine(relLT, b, a)
		return ra2, rb2, ok
	case relGE:
		rb2, ra2, ok := vrRefine(relLE, b, a)
		return ra2, rb2, ok
	case relSET:
		// No possibly-set bit in common: infeasible.
		if (a.TN.Val|a.TN.Mask)&(b.TN.Val|b.TN.Mask) == 0 {
			return a, b, false
		}
		if b.IsConst() && bits.OnesCount64(b.Lo) == 1 {
			// Exactly one test bit: it must be set in a.
			if a.TN.Mask&b.Lo != 0 {
				a.TN.Val |= b.Lo
				a.TN.Mask &^= b.Lo
				a = a.reduce()
			}
		}
		return a, b, true
	case relNSET:
		// A bit known set in both makes a&b nonzero: infeasible.
		if a.TN.Val&b.TN.Val != 0 {
			return a, b, false
		}
		if b.IsConst() {
			// Every test bit must be clear in a.
			a.TN.Mask &^= b.Lo
			a.TN.Val &^= b.Lo
			a = a.reduce()
		}
		return a, b, true
	}
	// relNone (or a future unmodeled relation): refine nothing, keep both
	// edges feasible — always sound.
	return a, b, true
}
