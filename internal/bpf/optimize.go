package bpf

import "fmt"

// The optimizer shrinks a verified program without changing any behavior
// observable outside the invocation: R0 at exit, impure helper calls (in
// order, with arguments), and map/ring contents. It runs rounds of
//
//   1. constant folding      ALU whose abstract result is a single value
//                            becomes MovImm
//   2. branch simplification never-taken branches drop, always-taken
//                            branches become Ja, jumps-to-next drop
//   3. dead code elimination pure register defs, exact stack stores, and
//                            pure helper calls whose results are dead
//   4. unreachable removal   pcs the abstract interpreter proved
//                            unreachable (via pruned edges)
//
// over a fresh Analysis each round until nothing changes, then re-verifies
// the result. FuzzOptimize differentially checks the equivalence claim
// against the VM on generator-produced programs.

// OptStats counts what Optimize did.
type OptStats struct {
	BeforeInsns       int
	AfterInsns        int
	Rounds            int
	FoldedConst       int
	SimplifiedBranch  int
	RemovedJumpToNext int
	RemovedDead       int
	RemovedStores     int
	RemovedCalls      int
	RemovedUnreached  int
}

// Saved returns the net instruction-count reduction.
func (s OptStats) Saved() int { return s.BeforeInsns - s.AfterInsns }

// Optimize returns a behavior-equivalent, no-larger program. The input
// must verify (maxInsns of 0 uses DefaultMaxInsns); the output is
// re-verified before it is returned, so a bug in a pass surfaces as an
// error here rather than as an unverified program loading.
func Optimize(p *Program, maxInsns int) (*Program, OptStats, error) {
	stats := OptStats{BeforeInsns: len(p.Insns)}
	cur := p
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		a, err := Analyze(cur, maxInsns)
		if err != nil {
			if round == 0 {
				return nil, stats, fmt.Errorf("bpf: optimize: input program: %w", err)
			}
			return nil, stats, fmt.Errorf("bpf: optimize: round %d produced an unverifiable program: %w", round, err)
		}
		next, changed := optimizeRound(a, &stats)
		if !changed {
			break
		}
		stats.Rounds++
		cur = next
	}
	if err := Verify(cur, maxInsns); err != nil {
		return nil, stats, fmt.Errorf("bpf: optimize: result failed re-verification: %w", err)
	}
	stats.AfterInsns = len(cur.Insns)
	return cur, stats, nil
}

// optimizeRound applies one round of all passes to the analyzed program,
// returning the rebuilt program and whether anything changed.
func optimizeRound(a *Analysis, stats *OptStats) (*Program, bool) {
	p := a.prog
	n := len(p.Insns)
	insns := append([]Insn(nil), p.Insns...)
	drop := make([]bool, n)
	changed := false

	// Pass 1+2: constant folding and branch simplification need only the
	// fixpoint states.
	for pc := 0; pc < n; pc++ {
		in := insns[pc]
		if !a.states[pc].valid {
			drop[pc] = true
			stats.RemovedUnreached++
			changed = true
			continue
		}
		switch {
		case isALU(in.Op) && in.Op != OpMovImm:
			if c, ok := a.foldableConst(pc, in); ok {
				insns[pc] = Insn{Op: OpMovImm, Dst: in.Dst, Imm: c}
				stats.FoldedConst++
				changed = true
			}
		case in.Op == OpJa && in.Off == 0:
			drop[pc] = true
			stats.RemovedJumpToNext++
			changed = true
		case isCondJump(in.Op):
			taken, fall := a.CondEdges(pc)
			switch {
			case in.Off == 0:
				// Both edges land on the next instruction.
				drop[pc] = true
				stats.RemovedJumpToNext++
				changed = true
			case !taken && fall:
				drop[pc] = true
				stats.SimplifiedBranch++
				changed = true
			case taken && !fall:
				insns[pc] = Insn{Op: OpJa, Off: in.Off, LoopBound: in.LoopBound}
				stats.SimplifiedBranch++
				changed = true
			}
		}
	}

	// Pass 3: liveness-driven dead code elimination. Skip it when the
	// program already changed this round — the next round's fresh
	// analysis sees the simplified CFG and produces sharper liveness.
	if !changed {
		lv := a.Liveness()
		for pc := 0; pc < n; pc++ {
			in := insns[pc]
			switch {
			case in.Op == OpMovImm, in.Op == OpMovReg, in.Op == OpLoadMapPtr,
				in.Op == OpLoad, isALU(in.Op):
				// A pure def is dead when its destination is not live
				// after. Loads are pure (verified in-bounds, cannot
				// fault), but a load also *uses* stack bytes — dropping
				// it only removes uses, which is safe.
				if lv.LiveOutRegs(pc)&regBit(in.Dst) == 0 {
					drop[pc] = true
					stats.RemovedDead++
					changed = true
				}
			case in.Op == OpStore, in.Op == OpStoreImm:
				// A stack store is dead when no byte it writes is live
				// after. Only exact stores qualify; stores through
				// map-value pointers escape and are never dead.
				st := &a.states[pc]
				base := st.regs[in.Dst]
				if base.kind != rkPtrStack || base.lo != base.hi {
					continue
				}
				lo := base.lo + int64(in.Off)
				dead := true
				for i := int64(0); i < 8; i++ {
					if lv.LiveOutStackByte(pc, int(lo+i+StackSize)) {
						dead = false
						break
					}
				}
				if dead {
					drop[pc] = true
					stats.RemovedStores++
					changed = true
				}
			case in.Op == OpCall:
				spec, _ := HelperByID(in.Imm)
				if !spec.Pure {
					continue
				}
				// The helper only writes R0; R1-R5 keep their values in
				// the VM, and the verifier treats them as clobbered, so
				// dropping the call can only make later code *more*
				// defined. Dead R0 makes the call removable.
				if lv.LiveOutRegs(pc)&regBit(R0) == 0 {
					drop[pc] = true
					stats.RemovedCalls++
					changed = true
				}
			}
		}
	}

	if !changed {
		return p, false
	}
	return rebuild(p, insns, drop), true
}

// foldableConst reports whether the scalar ALU instruction at pc always
// produces the same value, using the fixpoint in-state.
func (a *Analysis) foldableConst(pc int, in Insn) (int64, bool) {
	st := &a.states[pc]
	dst := st.regs[in.Dst]
	var src regState
	if isRegSrc(in.Op) {
		src = st.regs[in.Src]
	} else {
		src = constReg(in.Imm)
	}
	if in.Op == OpMovReg {
		if src.kind == rkScalar && src.vr.IsConst() {
			return int64(src.vr.Const()), true
		}
		return 0, false
	}
	if dst.kind != rkScalar || src.kind != rkScalar {
		return 0, false
	}
	out := vrTransfer(in.Op, dst.vr, src.vr)
	if out.IsConst() {
		return int64(out.Const()), true
	}
	return 0, false
}

// rebuild drops the marked instructions and remaps jump displacements.
// newIdx[pc] counts the kept instructions before pc, which is exactly the
// new index of the first kept instruction at or after pc — so jump
// targets into dropped (always unreachable or no-op) regions slide
// forward to the next kept instruction.
func rebuild(p *Program, insns []Insn, drop []bool) *Program {
	n := len(insns)
	newIdx := make([]int, n+1)
	k := 0
	for pc := 0; pc < n; pc++ {
		newIdx[pc] = k
		if !drop[pc] {
			k++
		}
	}
	newIdx[n] = k

	out := make([]Insn, 0, k)
	for pc := 0; pc < n; pc++ {
		if drop[pc] {
			continue
		}
		in := insns[pc]
		if isJump(in.Op) {
			tgt := pc + 1 + int(in.Off)
			in.Off = int32(newIdx[tgt] - (newIdx[pc] + 1))
		}
		out = append(out, in)
	}
	return &Program{Name: p.Name, Insns: out, Maps: p.Maps}
}
