package bpf

import "fmt"

// Helper IDs callable via OpCall. The set mirrors what TScout's Collector
// needs: map plumbing, the recursion stack (§5.2), perf output (§3.2), and
// reads of the kernel state each probe consumes (§4).
const (
	// HelperMapLookup: r1=map, r2=key ptr -> r0 = value ptr or NULL.
	HelperMapLookup = 1
	// HelperMapUpdate: r1=map, r2=key ptr, r3=value ptr -> r0 = 0/err.
	HelperMapUpdate = 2
	// HelperMapDelete: r1=map, r2=key ptr -> r0 = 1 if deleted.
	HelperMapDelete = 3
	// HelperStackPush: r1=stack map, r2=value ptr -> r0 = 0/err.
	HelperStackPush = 4
	// HelperStackPop: r1=stack map, r2=dst value ptr -> r0 = 0 ok, 1 empty.
	HelperStackPop = 5
	// HelperPerfOutput: r1=perf buffer, r2=data ptr, r3=const size.
	HelperPerfOutput = 6
	// HelperReadCounter: r1=counter id, r2=part (see CounterPart*) -> r0.
	HelperReadCounter = 7
	// HelperReadIOAC: r1=field (see IOACField*) -> r0.
	HelperReadIOAC = 8
	// HelperReadSock: r1=field (see SockField*) -> r0.
	HelperReadSock = 9
	// HelperGetPID: -> r0 = current task pid.
	HelperGetPID = 10
	// HelperKtime: -> r0 = current virtual time ns.
	HelperKtime = 11
	// HelperGetArg: r1=index -> r0 = tracepoint argument (0 if OOB).
	HelperGetArg = 12
	// HelperTracePrintk: r1=value -> appends to the program's debug log.
	HelperTracePrintk = 13
	// HelperGetTaskGen: -> r0 = current task generation tag. Unlike the
	// pid it is never reused, so gen-keyed Collector state cannot pair
	// events across a pid recycle.
	HelperGetTaskGen = 14
	// HelperGetCPU: -> r0 = the CPU the task is currently running on.
	HelperGetCPU = 15
)

// Parts readable through HelperReadCounter. The raw/enabled/running split
// lets generated code perform the multiplexing normalization of §4.1 inside
// the Collector (normalized = raw * enabled / running).
const (
	CounterPartRaw     = 0
	CounterPartEnabled = 1
	CounterPartRunning = 2
)

// Fields readable through HelperReadIOAC (task_struct ioac, §4.4).
const (
	IOACReadBytes  = 0
	IOACWriteBytes = 1
	IOACReadOps    = 2
	IOACWriteOps   = 3
)

// Fields readable through HelperReadSock (tcp_sock, §4.3).
const (
	SockBytesReceived = 0
	SockBytesSent     = 1
	SockSegsIn        = 2
	SockSegsOut       = 3
)

// ArgKind classifies a helper argument for the verifier.
type ArgKind int

// Helper argument kinds.
const (
	// ArgScalar is any initialized scalar.
	ArgScalar ArgKind = iota
	// ArgConstMap must be a map handle from OpLoadMapPtr.
	ArgConstMap
	// ArgPtrKey must point to initialized stack memory of the map's key
	// size (the map comes from the closest preceding ArgConstMap).
	ArgPtrKey
	// ArgPtrValue must point to stack memory of the map's value size.
	// For output-parameter helpers (stack pop) the memory need not be
	// initialized but must be in bounds.
	ArgPtrValue
	// ArgPtrSized must point to initialized stack memory whose length is
	// given by the following ArgSizeConst argument.
	ArgPtrSized
	// ArgSizeConst must be a compile-time-known scalar constant > 0.
	ArgSizeConst
)

// RetKind classifies a helper return value for the verifier.
type RetKind int

// Helper return kinds.
const (
	// RetScalar returns an ordinary scalar in R0.
	RetScalar RetKind = iota
	// RetMapValueOrNull returns a pointer to a map value that MUST be
	// null-checked before dereference.
	RetMapValueOrNull
)

// HelperSpec describes a helper's signature and kernel-space cost. Pure
// helpers only read task/kernel state and write R0 — they have no effect
// observable outside the invocation, so the optimizer may delete a call
// whose result is dead. Map helpers are all impure: even lookup can
// materialize state (PerTaskMap auto-creates the slot on first lookup).
type HelperSpec struct {
	ID     int64
	Name   string
	Args   []ArgKind
	Ret    RetKind
	CostNS int64
	Pure   bool
}

var helperSpecs = map[int64]HelperSpec{
	HelperMapLookup: {HelperMapLookup, "map_lookup_elem",
		[]ArgKind{ArgConstMap, ArgPtrKey}, RetMapValueOrNull, 12, false},
	HelperMapUpdate: {HelperMapUpdate, "map_update_elem",
		[]ArgKind{ArgConstMap, ArgPtrKey, ArgPtrValue}, RetScalar, 18, false},
	HelperMapDelete: {HelperMapDelete, "map_delete_elem",
		[]ArgKind{ArgConstMap, ArgPtrKey}, RetScalar, 13, false},
	HelperStackPush: {HelperStackPush, "stack_push",
		[]ArgKind{ArgConstMap, ArgPtrValue}, RetScalar, 14, false},
	HelperStackPop: {HelperStackPop, "stack_pop",
		[]ArgKind{ArgConstMap, ArgPtrValue}, RetScalar, 14, false},
	HelperPerfOutput: {HelperPerfOutput, "perf_event_output",
		[]ArgKind{ArgConstMap, ArgPtrSized, ArgSizeConst}, RetScalar, 40, false},
	HelperReadCounter: {HelperReadCounter, "read_perf_counter",
		[]ArgKind{ArgScalar, ArgScalar}, RetScalar, 11, true},
	HelperReadIOAC: {HelperReadIOAC, "read_task_ioac",
		[]ArgKind{ArgScalar}, RetScalar, 8, true},
	HelperReadSock: {HelperReadSock, "read_tcp_sock",
		[]ArgKind{ArgScalar}, RetScalar, 8, true},
	HelperGetPID:      {HelperGetPID, "get_current_pid", nil, RetScalar, 3, true},
	HelperKtime:       {HelperKtime, "ktime_get_ns", nil, RetScalar, 4, true},
	HelperGetArg:      {HelperGetArg, "get_tracepoint_arg", []ArgKind{ArgScalar}, RetScalar, 2, true},
	HelperTracePrintk: {HelperTracePrintk, "trace_printk", []ArgKind{ArgScalar}, RetScalar, 40, false},
	HelperGetTaskGen:  {HelperGetTaskGen, "get_task_gen", nil, RetScalar, 3, true},
	HelperGetCPU:      {HelperGetCPU, "get_smp_processor_id", nil, RetScalar, 2, true},
}

// HelperByID returns the spec for a helper ID.
func HelperByID(id int64) (HelperSpec, bool) {
	s, ok := helperSpecs[id]
	return s, ok
}

// HelperName returns the printable name of a helper ID.
func HelperName(id int64) string {
	if s, ok := helperSpecs[id]; ok {
		return s.Name
	}
	return fmt.Sprintf("helper#%d", id)
}
