package bpf

// Batch is the reusable destination of the batched drain path: drained
// samples are copied back-to-back into one contiguous buffer with an
// offsets index, so a drain cycle makes zero per-sample allocations once
// the buffer has grown to the working-set size. Sample slices returned by
// Sample alias the buffer and are valid only until the next Reset.
type Batch struct {
	buf []byte
	end []int // end[i] is the exclusive end offset of sample i in buf
}

// Reset empties the batch, retaining capacity.
func (b *Batch) Reset() {
	b.buf = b.buf[:0]
	b.end = b.end[:0]
}

// Len returns the number of samples in the batch.
func (b *Batch) Len() int { return len(b.end) }

// Bytes returns the total payload bytes currently held.
func (b *Batch) Bytes() int { return len(b.buf) }

// Sample returns the i'th sample. The slice aliases the batch's buffer:
// it is valid until the next Reset and must not be retained across cycles.
func (b *Batch) Sample(i int) []byte {
	start := 0
	if i > 0 {
		start = b.end[i-1]
	}
	return b.buf[start:b.end[i]:b.end[i]]
}

// Append copies one sample onto the end of the batch.
func (b *Batch) Append(data []byte) {
	b.buf = append(b.buf, data...)
	b.end = append(b.end, len(b.buf))
}
