package bpf

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tscout/internal/kernel"
)

// Runtime errors. After successful verification these indicate a verifier
// bug, not a program bug; the kernel kills the program either way.
var (
	ErrRuntime      = errors.New("bpf: runtime fault")
	ErrInsnBudget   = errors.New("bpf: instruction budget exhausted")
	ErrNotPerfArray = errors.New("bpf: perf_event_output on non-perf map")
)

// RuntimeInsnBudget caps executed (not static) instructions per invocation,
// the runtime backstop behind the verifier's bounded-loop rule.
const RuntimeInsnBudget = 1 << 20

// Pointer encoding inside 64-bit registers: bit 63 tags memory pointers
// (object id in bits 62..32, byte address in bits 31..0); bit 62 together
// with bit 63 tags map handles (map index in low bits). The verifier
// guarantees programs never forge or leak these values.
const (
	ptrTag    = uint64(1) << 63
	mapTagBit = uint64(1) << 62
	mapTag    = ptrTag | mapTagBit
)

func mkPtr(obj uint32, addr uint32) uint64 {
	return ptrTag | uint64(obj&0x3fffffff)<<32 | uint64(addr)
}

func isPtr(v uint64) bool { return v&ptrTag != 0 && v&mapTagBit == 0 }
func isMapHandle(v uint64) bool {
	return v&mapTag == mapTag
}
func ptrObj(v uint64) uint32  { return uint32(v>>32) & 0x3fffffff }
func ptrAddr(v uint64) uint32 { return uint32(v) }

// LoadedProgram is a verified program ready to attach and run. One loaded
// program may be attached to tracepoints hit by many tasks concurrently,
// so its bookkeeping is synchronized.
type LoadedProgram struct {
	prog *Program

	// ptrALU[pc] is true when the verifier proved the ALU instruction at
	// pc operates on a pointer destination. The interpreter dispatches on
	// this static fact rather than on the value's runtime tag bits: a
	// scalar whose bits happen to fall in the pointer-tagged range must
	// still take the evalALU path, or scalar semantics would silently
	// change at 1<<63. The verifier guarantees the kind of a register at
	// a given pc is the same on every feasible path (kind mismatches join
	// to uninit, which any use rejects), so the flag is well-defined.
	ptrALU []bool

	// analysis is the abstract-interpretation result Load verified the
	// program with, retained so Compile can license its check elisions
	// from the same proofs (DESIGN.md §9). Nil only for hand-constructed
	// programs that bypassed Load, which Compile declines.
	analysis *Analysis

	// compiled holds the closure-threaded native form once Compile has
	// accepted the program; Run dispatches through it when non-nil and
	// falls back to the interpreter otherwise.
	compiled atomic.Pointer[compiledProg]
	// compileInfo records the outcome of the last Compile call (zero
	// value until Compile runs). Written at load time, before the
	// program can be attached, so a plain field is safe.
	compileInfo CompileInfo

	// execPool recycles compiled execution states, fronted by ecCache — a
	// single-slot atomic cache that makes the common sequential case (one
	// tracepoint hit at a time) a lock-free swap. Reuse without zeroing
	// the stack is sound only because the verifier rejects any read of a
	// stack byte the program did not itself write this invocation.
	ecCache  atomic.Pointer[execState]
	execPool sync.Pool

	interpRuns    atomic.Int64
	compiledRuns  atomic.Int64
	runtimeFaults atomic.Int64

	printkMu sync.Mutex
	printk   []uint64

	// Optional side-effect trace, used by the differential fuzzers to
	// compare original and optimized programs: every successful call to a
	// non-Pure helper is recorded with its consumed arguments and return
	// value. Pure helper calls are omitted deliberately — the optimizer is
	// allowed to delete them when their result is dead.
	traceOn atomic.Bool
	traceMu sync.Mutex
	trace   []HelperCall
}

// HelperCall is one recorded side-effecting helper invocation.
type HelperCall struct {
	ID   int64
	Args []uint64
	Ret  uint64
}

// SetCallTrace enables or disables recording of impure helper calls.
func (lp *LoadedProgram) SetCallTrace(on bool) { lp.traceOn.Store(on) }

// CallTrace returns a copy of the recorded impure helper calls.
func (lp *LoadedProgram) CallTrace() []HelperCall {
	lp.traceMu.Lock()
	defer lp.traceMu.Unlock()
	out := make([]HelperCall, len(lp.trace))
	for i, c := range lp.trace {
		out[i] = HelperCall{ID: c.ID, Args: append([]uint64(nil), c.Args...), Ret: c.Ret}
	}
	return out
}

func (lp *LoadedProgram) recordCall(ec *execState, id int64) {
	spec, ok := HelperByID(id)
	if !ok || spec.Pure {
		return
	}
	args := append([]uint64(nil), ec.regs[R1:R1+Reg(len(spec.Args))]...)
	lp.traceMu.Lock()
	lp.trace = append(lp.trace, HelperCall{ID: id, Args: args, Ret: ec.regs[R0]})
	lp.traceMu.Unlock()
}

// Runs returns the number of times the program has been invoked.
func (lp *LoadedProgram) Runs() int64 {
	return lp.interpRuns.Load() + lp.compiledRuns.Load()
}

// Printk returns a copy of the values logged via HelperTracePrintk.
func (lp *LoadedProgram) Printk() []uint64 {
	lp.printkMu.Lock()
	defer lp.printkMu.Unlock()
	return append([]uint64(nil), lp.printk...)
}

// Load verifies p and returns an executable handle. maxInsns of 0 uses
// DefaultMaxInsns. This is the moment the real kernel would also JIT the
// bytecode; the simulator interprets instead and charges per-instruction
// virtual time.
func Load(p *Program, maxInsns int) (*LoadedProgram, error) {
	a, err := Analyze(p, maxInsns)
	if err != nil {
		return nil, err
	}
	ptrALU := make([]bool, len(p.Insns))
	for pc, in := range p.Insns {
		if !isALU(in.Op) || in.Op == OpMovImm || in.Op == OpMovReg || !a.Reached(pc) {
			continue
		}
		k := a.states[pc].regs[in.Dst].kind
		ptrALU[pc] = k == rkPtrStack || k == rkPtrMapValue
	}
	return &LoadedProgram{prog: p, ptrALU: ptrALU, analysis: a}, nil
}

// Program returns the underlying program.
func (lp *LoadedProgram) Program() *Program { return lp.prog }

// Attach installs the program on a kernel tracepoint. Each hit pays one
// mode switch (charged by the kernel) plus the program's execution cost.
// A tracepoint handler has no error channel back to the kernel, so a
// runtime fault is counted in RuntimeFaults instead of vanishing: the hit
// still charges its partial cost, but produced no sample, and the loss
// accounting (chaos identities, tsctl stats) must be able to see that.
func (lp *LoadedProgram) Attach(tp *kernel.Tracepoint) {
	tp.Attach(func(t *kernel.Task, args []uint64) int64 {
		_, cost, err := lp.Run(t, args)
		if err != nil {
			lp.runtimeFaults.Add(1)
		}
		return cost
	})
}

// RuntimeFaults returns the number of attached-tracepoint hits whose run
// ended in a runtime fault (and therefore produced no sample).
func (lp *LoadedProgram) RuntimeFaults() int64 { return lp.runtimeFaults.Load() }

type execState struct {
	// regs is padded to a power of two (only R0–R10 are architectural) so
	// the compiled engine's superblock runner can index it with a masked
	// byte and no bounds check.
	regs    [regSlots]uint64
	stack   [StackSize]byte
	objects [][]byte // object 0 is unused; map-value objects registered at runtime
	task    *kernel.Task
	args    []uint64

	// Compiled-path accounting; the interpreter keeps these in locals.
	executed int
	helperNS int64
	err      error
}

func (ec *execState) registerObject(b []byte) uint64 {
	ec.objects = append(ec.objects, b)
	return mkPtr(uint32(len(ec.objects)-1)+1, 0)
}

func (ec *execState) mem(ptr uint64, off int32, size int) ([]byte, error) {
	if !isPtr(ptr) {
		return nil, fmt.Errorf("%w: dereference of non-pointer %#x", ErrRuntime, ptr)
	}
	obj := ptrObj(ptr)
	addr := int64(ptrAddr(ptr)) + int64(off)
	var buf []byte
	if obj == 0 {
		buf = ec.stack[:]
	} else {
		i := int(obj) - 1
		if i >= len(ec.objects) {
			return nil, fmt.Errorf("%w: dangling object %d", ErrRuntime, obj)
		}
		buf = ec.objects[i]
	}
	if addr < 0 || addr+int64(size) > int64(len(buf)) {
		return nil, fmt.Errorf("%w: access at %d size %d outside object of %d bytes", ErrRuntime, addr, size, len(buf))
	}
	return buf[addr : addr+int64(size)], nil
}

// Run executes the program for task with the given tracepoint arguments.
// It returns R0, the virtual-time cost of the execution (instruction count
// times the profile's per-instruction cost, plus helper costs), and any
// runtime fault. When Compile has accepted the program, execution threads
// through the compiled closures; otherwise (never compiled, or declined)
// it falls back to the interpreter. Both paths produce bit-identical
// results — R0, cost, helper trace, printk, and map end-states — which
// the differential fuzz oracles enforce.
func (lp *LoadedProgram) Run(task *kernel.Task, args []uint64) (uint64, int64, error) {
	if c := lp.compiled.Load(); c != nil {
		return lp.runCompiled(c, task, args)
	}
	lp.interpRuns.Add(1)
	return lp.runInterp(task, args)
}

// RunInterpreted executes the program through the interpreter even when a
// compiled form exists — the reference semantics the differential oracles
// compare the compiled path against.
func (lp *LoadedProgram) RunInterpreted(task *kernel.Task, args []uint64) (uint64, int64, error) {
	lp.interpRuns.Add(1)
	return lp.runInterp(task, args)
}

func (lp *LoadedProgram) runInterp(task *kernel.Task, args []uint64) (uint64, int64, error) {
	p := lp.prog
	profile := &task.Kernel().Profile
	ec := &execState{task: task, args: args}
	ec.regs[R10] = mkPtr(0, StackSize)

	executed := 0
	var helperNS int64
	pc := 0
	for {
		if executed >= RuntimeInsnBudget {
			return 0, cost(executed, helperNS, profile.BPFInsnNS), ErrInsnBudget
		}
		executed++
		in := p.Insns[pc]
		switch {
		case in.Op == OpExit:
			return ec.regs[R0], cost(executed, helperNS, profile.BPFInsnNS), nil

		case in.Op == OpMovImm:
			ec.regs[in.Dst] = uint64(in.Imm)
			pc++
		case in.Op == OpMovReg:
			ec.regs[in.Dst] = ec.regs[in.Src]
			pc++
		case isALU(in.Op):
			var src uint64
			if isRegSrc(in.Op) {
				src = ec.regs[in.Src]
			} else {
				src = uint64(in.Imm)
			}
			dst := ec.regs[in.Dst]
			if lp.ptrALU[pc] {
				// Pointer arithmetic (verified to be add/sub const).
				delta := int64(src)
				if in.Op == OpSubImm || in.Op == OpSubReg {
					delta = -delta
				}
				ec.regs[in.Dst] = mkPtr(ptrObj(dst), uint32(int64(ptrAddr(dst))+delta))
			} else {
				ec.regs[in.Dst] = uint64(evalALU(in.Op, int64(dst), int64(src)))
			}
			pc++

		case in.Op == OpLoadMapPtr:
			ec.regs[in.Dst] = mapTag | uint64(in.Imm)
			pc++

		case in.Op == OpLoad:
			b, err := ec.mem(ec.regs[in.Src], in.Off, 8)
			if err != nil {
				return 0, cost(executed, helperNS, profile.BPFInsnNS), err
			}
			ec.regs[in.Dst] = U64(b)
			pc++
		case in.Op == OpStore, in.Op == OpStoreImm:
			b, err := ec.mem(ec.regs[in.Dst], in.Off, 8)
			if err != nil {
				return 0, cost(executed, helperNS, profile.BPFInsnNS), err
			}
			if in.Op == OpStore {
				PutU64(b, ec.regs[in.Src])
			} else {
				PutU64(b, uint64(in.Imm))
			}
			pc++

		case in.Op == OpJa:
			pc += 1 + int(in.Off)
		case isCondJump(in.Op):
			var b uint64
			if isRegSrc(in.Op) {
				b = ec.regs[in.Src]
			} else {
				b = uint64(in.Imm)
			}
			if condTrue(in.Op, ec.regs[in.Dst], b) {
				pc += 1 + int(in.Off)
			} else {
				pc++
			}

		case in.Op == OpCall:
			ns, err := lp.call(ec, in.Imm)
			helperNS += ns
			if err != nil {
				return 0, cost(executed, helperNS, profile.BPFInsnNS), err
			}
			if lp.traceOn.Load() {
				lp.recordCall(ec, in.Imm)
			}
			pc++
		default:
			return 0, cost(executed, helperNS, profile.BPFInsnNS), fmt.Errorf("%w: bad opcode at %d", ErrRuntime, pc)
		}
	}
}

// cost converts an executed-instruction count into virtual nanoseconds,
// rounding half-up: profiles charge fractional nanoseconds per instruction
// (0.24–0.25ns), and truncation would systematically under-charge the
// kernel noise stream by up to 1ns on every single marker hit.
func cost(insns int, helperNS int64, insnNS float64) int64 {
	return int64(float64(insns)*insnNS+0.5) + helperNS
}

func condTrue(op Op, a, b uint64) bool {
	switch op {
	case OpJeqImm, OpJeqReg:
		return a == b
	case OpJneImm, OpJneReg:
		return a != b
	case OpJgtImm, OpJgtReg:
		return a > b
	case OpJgeImm, OpJgeReg:
		return a >= b
	case OpJltImm, OpJltReg:
		return a < b
	case OpJleImm, OpJleReg:
		return a <= b
	case OpJsetImm:
		return a&b != 0
	}
	return false
}

// perfScale is the fixed-point scale used for counter enabled/running
// times so generated code can normalize with integer math.
const perfScale = 1024

func (lp *LoadedProgram) call(ec *execState, id int64) (int64, error) {
	spec, _ := HelperByID(id)
	maps := lp.prog.Maps
	getMap := func(r Reg) (Map, error) {
		v := ec.regs[r]
		if !isMapHandle(v) {
			return nil, fmt.Errorf("%w: %s: r%d is not a map handle", ErrRuntime, spec.Name, r)
		}
		idx := int(v &^ mapTag)
		if idx >= len(maps) {
			return nil, fmt.Errorf("%w: %s: map index %d out of range", ErrRuntime, spec.Name, idx)
		}
		return maps[idx], nil
	}
	stackBytes := func(r Reg, size int) ([]byte, error) {
		if size == 0 {
			return nil, nil
		}
		return ec.mem(ec.regs[r], 0, size)
	}

	switch id {
	case HelperMapLookup:
		m, err := getMap(R1)
		if err != nil {
			return spec.CostNS, err
		}
		key, err := stackBytes(R2, m.KeySize())
		if err != nil {
			return spec.CostNS, err
		}
		v := m.Lookup(key)
		if v == nil {
			ec.regs[R0] = 0
		} else {
			ec.regs[R0] = ec.registerObject(v)
		}
	case HelperMapUpdate:
		m, err := getMap(R1)
		if err != nil {
			return spec.CostNS, err
		}
		key, err := stackBytes(R2, m.KeySize())
		if err != nil {
			return spec.CostNS, err
		}
		val, err := stackBytes(R3, m.ValueSize())
		if err != nil {
			return spec.CostNS, err
		}
		if uerr := m.Update(key, val); uerr != nil {
			ec.regs[R0] = ^uint64(0) // -1
		} else {
			ec.regs[R0] = 0
		}
	case HelperMapDelete:
		m, err := getMap(R1)
		if err != nil {
			return spec.CostNS, err
		}
		key, err := stackBytes(R2, m.KeySize())
		if err != nil {
			return spec.CostNS, err
		}
		if m.Delete(key) {
			ec.regs[R0] = 1
		} else {
			ec.regs[R0] = 0
		}
	case HelperStackPush:
		m, err := getMap(R1)
		if err != nil {
			return spec.CostNS, err
		}
		sm, ok := m.(*StackMap)
		if !ok {
			return spec.CostNS, fmt.Errorf("%w: stack_push on non-stack map", ErrRuntime)
		}
		val, err := stackBytes(R2, sm.ValueSize())
		if err != nil {
			return spec.CostNS, err
		}
		if perr := sm.Push(val); perr != nil {
			ec.regs[R0] = ^uint64(0)
		} else {
			ec.regs[R0] = 0
		}
	case HelperStackPop:
		m, err := getMap(R1)
		if err != nil {
			return spec.CostNS, err
		}
		sm, ok := m.(*StackMap)
		if !ok {
			return spec.CostNS, fmt.Errorf("%w: stack_pop on non-stack map", ErrRuntime)
		}
		dst, err := stackBytes(R2, sm.ValueSize())
		if err != nil {
			return spec.CostNS, err
		}
		v, perr := sm.Pop()
		if perr != nil {
			ec.regs[R0] = 1
		} else {
			copy(dst, v)
			ec.regs[R0] = 0
		}
	case HelperPerfOutput:
		m, err := getMap(R1)
		if err != nil {
			return spec.CostNS, err
		}
		rb, ok := m.(PerfOutputTarget)
		if !ok {
			return spec.CostNS, ErrNotPerfArray
		}
		size := int(ec.regs[R3])
		data, err := stackBytes(R2, size)
		if err != nil {
			return spec.CostNS, err
		}
		// Route by the submitting task's current CPU, as perf does: a
		// per-CPU target lands the sample in that CPU's ring, the shared
		// ring ignores the hint.
		rb.SubmitFrom(ec.task.CPU(), data)
		ec.regs[R0] = 0
		// Copy cost scales with sample size.
		return spec.CostNS + int64(size/16), nil
	case HelperReadCounter:
		// The counter selector is a runtime value the verifier cannot
		// bound; an invalid id reads as 0 like the other field helpers
		// (found by FuzzVerifyThenRun: Read would index out of range).
		c := kernel.Counter(ec.regs[R1])
		if !c.Valid() {
			ec.regs[R0] = 0
			break
		}
		r := ec.task.Perf().Read(c)
		switch ec.regs[R2] {
		case CounterPartRaw:
			// Via int64 so a wrapped (negative-going) counter converts
			// with modular semantics on every platform; float-to-uint64
			// of a negative value is otherwise implementation-defined.
			ec.regs[R0] = uint64(int64(r.Raw))
		case CounterPartEnabled:
			ec.regs[R0] = uint64(r.TimeEnabled * perfScale)
		case CounterPartRunning:
			ec.regs[R0] = uint64(r.TimeRunning * perfScale)
		default:
			ec.regs[R0] = 0
		}
	case HelperReadIOAC:
		switch ec.regs[R1] {
		case IOACReadBytes:
			ec.regs[R0] = uint64(ec.task.IOAC.ReadBytes)
		case IOACWriteBytes:
			ec.regs[R0] = uint64(ec.task.IOAC.WriteBytes)
		case IOACReadOps:
			ec.regs[R0] = uint64(ec.task.IOAC.ReadOps)
		case IOACWriteOps:
			ec.regs[R0] = uint64(ec.task.IOAC.WriteOps)
		default:
			ec.regs[R0] = 0
		}
	case HelperReadSock:
		switch ec.regs[R1] {
		case SockBytesReceived:
			ec.regs[R0] = uint64(ec.task.Sock.BytesReceived)
		case SockBytesSent:
			ec.regs[R0] = uint64(ec.task.Sock.BytesSent)
		case SockSegsIn:
			ec.regs[R0] = uint64(ec.task.Sock.SegsIn)
		case SockSegsOut:
			ec.regs[R0] = uint64(ec.task.Sock.SegsOut)
		default:
			ec.regs[R0] = 0
		}
	case HelperGetPID:
		ec.regs[R0] = uint64(ec.task.PID)
	case HelperGetTaskGen:
		ec.regs[R0] = ec.task.Gen()
	case HelperGetCPU:
		ec.regs[R0] = uint64(ec.task.CPU())
	case HelperKtime:
		ec.regs[R0] = uint64(ec.task.Now())
	case HelperGetArg:
		i := int(ec.regs[R1])
		if i >= 0 && i < len(ec.args) {
			ec.regs[R0] = ec.args[i]
		} else {
			ec.regs[R0] = 0
		}
	case HelperTracePrintk:
		lp.printkMu.Lock()
		lp.printk = append(lp.printk, ec.regs[R1])
		lp.printkMu.Unlock()
		ec.regs[R0] = 0
	default:
		return 0, fmt.Errorf("%w: unknown helper %d", ErrRuntime, id)
	}
	return spec.CostNS, nil
}
