package bpf

import (
	"encoding/binary"
	"sync"
	"testing"
)

func TestRingBufferFIFOAndOverwrite(t *testing.T) {
	r := NewPerfRingBuffer("t", 4)
	for i := 0; i < 6; i++ {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(i))
		r.Submit(buf)
	}
	st := r.Stats()
	if st.Submitted != 6 || st.Dropped != 2 || st.Pending != 4 || st.Capacity != 4 {
		t.Fatalf("stats: %+v", st)
	}
	out := r.Drain(0)
	if len(out) != 4 {
		t.Fatalf("drained %d", len(out))
	}
	// Oldest two were overwritten; 2..5 survive in order.
	for i, buf := range out {
		if got := binary.LittleEndian.Uint64(buf); got != uint64(i+2) {
			t.Fatalf("entry %d: got %d want %d", i, got, i+2)
		}
	}
}

func TestRingBufferDrainAppendBatches(t *testing.T) {
	r := NewPerfRingBuffer("t", 16)
	for i := 0; i < 10; i++ {
		r.Submit([]byte{byte(i)})
	}
	dst := make([][]byte, 0, 16)
	dst, n := r.DrainAppend(dst, 3)
	if n != 3 || len(dst) != 3 {
		t.Fatalf("first batch: n=%d len=%d", n, len(dst))
	}
	dst, n = r.DrainAppend(dst, 0)
	if n != 7 || len(dst) != 10 {
		t.Fatalf("second batch: n=%d len=%d", n, len(dst))
	}
	for i, buf := range dst {
		if buf[0] != byte(i) {
			t.Fatalf("order broken at %d: %d", i, buf[0])
		}
	}
	if st := r.Stats(); st.Pending != 0 {
		t.Fatalf("pending after full drain: %d", st.Pending)
	}
}

// TestRingBufferConcurrentSubmitDrainReset exercises the ring under
// concurrent producers, a draining consumer, and periodic resets; run with
// -race it proves the buffer's locking discipline (the Processor's sharded
// drain path calls DrainAppend from its own goroutine while Collectors
// submit).
func TestRingBufferConcurrentSubmitDrainReset(t *testing.T) {
	r := NewPerfRingBuffer("t", 64)
	const producers = 4
	const perProducer = 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint64(buf, uint64(p*perProducer+i))
				r.Submit(buf)
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	drained := 0
	for i := 0; ; i++ {
		var batch [][]byte
		var n int
		batch, n = r.DrainAppend(batch[:0], 32)
		drained += n
		for _, buf := range batch {
			if len(buf) != 8 {
				t.Errorf("corrupt entry of %d bytes", len(buf))
				return
			}
		}
		_ = r.Stats()
		if i%97 == 96 {
			r.Reset()
		}
		select {
		case <-done:
			// Producers may have finished after this loop's drain; count
			// the final sweep too.
			drained += len(r.Drain(0))
			if st := r.Stats(); st.Pending != 0 {
				t.Fatalf("pending after final drain: %d", st.Pending)
			}
			if drained == 0 {
				t.Fatalf("consumer never saw a sample")
			}
			return
		default:
		}
	}
}

// TestRingBufferStatsConsistency: submitted - dropped must equal drained +
// pending at any quiescent point (the invariant the Processor's telemetry
// reports on).
func TestRingBufferStatsConsistency(t *testing.T) {
	r := NewPerfRingBuffer("t", 8)
	for i := 0; i < 20; i++ {
		r.Submit([]byte{byte(i)})
	}
	got := len(r.Drain(5))
	st := r.Stats()
	if st.Submitted-st.Dropped != int64(got+st.Pending) {
		t.Fatalf("invariant broken: %+v drained=%d", st, got)
	}
}
