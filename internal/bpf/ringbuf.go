package bpf

import "sync"

// PerfRingBuffer is the bounded channel between the kernel-space Collector
// and the user-space Processor (paper §3.2). perf_event_output submits a
// completed sample; the Processor drains batches from user space. The
// buffer is bounded: when full, the oldest sample is overwritten and a drop
// is counted — the Collector never blocks, which is TScout's "no back
// pressure" guarantee.
type PerfRingBuffer struct {
	name     string
	capacity int

	mu      sync.Mutex
	entries [][]byte // guarded by mu
	head    int      // index of oldest entry; guarded by mu
	count   int      // guarded by mu
	high    int      // guarded by mu

	submitted int64 // guarded by mu
	drained   int64 // guarded by mu
	dropped   int64 // guarded by mu
}

// NewPerfRingBuffer creates a ring buffer holding at most capacity samples.
func NewPerfRingBuffer(name string, capacity int) *PerfRingBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &PerfRingBuffer{
		name:     name,
		capacity: capacity,
		entries:  make([][]byte, capacity),
	}
}

// Name returns the buffer name.
func (r *PerfRingBuffer) Name() string { return r.name }

// KeySize returns 0; ring buffers are keyless.
func (r *PerfRingBuffer) KeySize() int { return 0 }

// ValueSize returns 0; samples are variable-length.
func (r *PerfRingBuffer) ValueSize() int { return 0 }

// MaxEntries returns the capacity.
func (r *PerfRingBuffer) MaxEntries() int { return r.capacity }

// Len returns the number of buffered samples.
func (r *PerfRingBuffer) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Lookup is unsupported on ring buffers and returns nil.
func (r *PerfRingBuffer) Lookup(key []byte) []byte { return nil }

// Update submits value as a sample (Map interface adapter).
func (r *PerfRingBuffer) Update(key, value []byte) error {
	r.Submit(value)
	return nil
}

// Delete is unsupported on ring buffers.
func (r *PerfRingBuffer) Delete(key []byte) bool { return false }

// Submit copies data into the ring. If the ring is full the oldest sample
// is overwritten and counted as dropped (paper §3.2: "the Collector's
// buffer is bounded so that TS will overwrite samples if it is full").
func (r *PerfRingBuffer) Submit(data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == r.capacity {
		// Overwrite the oldest.
		r.entries[r.head] = cp
		r.head = (r.head + 1) % r.capacity
		r.dropped++
		r.submitted++
		return
	}
	r.entries[(r.head+r.count)%r.capacity] = cp
	r.count++
	if r.count > r.high {
		r.high = r.count
	}
	r.submitted++
}

// SubmitFrom implements PerfOutputTarget; a single shared ring ignores the
// submitting CPU.
func (r *PerfRingBuffer) SubmitFrom(cpu int, data []byte) { r.Submit(data) }

// Drain removes and returns up to max samples in submission order. A max
// of 0 or less drains everything.
func (r *PerfRingBuffer) Drain(max int) [][]byte {
	out, _ := r.DrainAppend(nil, max)
	return out
}

// DrainAppend is the batched drain path: it removes up to max samples
// (0 or less = everything) in submission order, appends them to dst, and
// returns the extended slice plus the number drained. One lock acquisition
// covers the whole batch, so a sharded Processor pays the synchronization
// cost once per drain period rather than once per sample.
func (r *PerfRingBuffer) DrainAppend(dst [][]byte, max int) ([][]byte, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.count
	if max > 0 && max < n {
		n = max
	}
	if cap(dst)-len(dst) < n {
		grown := make([][]byte, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < n; i++ {
		dst = append(dst, r.entries[r.head])
		r.entries[r.head] = nil
		r.head = (r.head + 1) % r.capacity
	}
	r.count -= n
	r.drained += int64(n)
	return dst, n
}

// DrainBatch removes up to max samples (0 or less = everything) in
// submission order, copying them into dst's contiguous buffer, and returns
// the number drained. Unlike DrainAppend it allocates no per-sample slice:
// the copies land back-to-back in dst's reusable buffer.
func (r *PerfRingBuffer) DrainBatch(dst *Batch, max int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.count
	if max > 0 && max < n {
		n = max
	}
	for i := 0; i < n; i++ {
		dst.Append(r.entries[r.head])
		r.entries[r.head] = nil
		r.head = (r.head + 1) % r.capacity
	}
	r.count -= n
	r.drained += int64(n)
	return n
}

// RingStats is a consistent snapshot of a ring buffer's counters, taken
// under one lock so submitted/dropped/pending cannot tear against a
// concurrent Submit (the accounting hazard behind stale feedback deltas).
type RingStats struct {
	Submitted int64 // cumulative Submit calls
	Drained   int64 // cumulative samples pulled out by the consumer
	Dropped   int64 // cumulative overwrites
	Pending   int   // samples currently buffered
	HighWater int   // peak Pending since creation/Reset (overflow forensics)
	Capacity  int
}

// Stats returns an atomic snapshot of the buffer's counters.
func (r *PerfRingBuffer) Stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingStats{
		Submitted: r.submitted,
		Drained:   r.drained,
		Dropped:   r.dropped,
		Pending:   r.count,
		HighWater: r.high,
		Capacity:  r.capacity,
	}
}

// Submitted returns the total number of Submit calls.
func (r *PerfRingBuffer) Submitted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.submitted
}

// Dropped returns the number of samples lost to overwrites.
func (r *PerfRingBuffer) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset clears the buffer and its statistics.
func (r *PerfRingBuffer) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = make([][]byte, r.capacity)
	r.head, r.count, r.high = 0, 0, 0
	r.submitted, r.drained, r.dropped = 0, 0, 0
}
