package bpf

import (
	"fmt"

	"tscout/internal/kernel"
)

// This file implements the post-verify JIT: it compiles a verified program
// to closure-threaded native Go, using the abstract-interpretation proofs
// the verifier already computed (DESIGN.md §9) to elide exactly the checks
// the interpreter performs dynamically:
//
//   - No runtime instruction budget: the compiler declines any program with
//     a backward jump, so executed instructions ≤ static length < budget.
//   - No pointer-tag decode or bounds check on memory access: the verifier
//     proved the base register's kind (stack or map value) and offset range
//     at every dereference; exact stack offsets become compile-time
//     constant indices.
//   - No helper-argument validation: map handles proven rkConstMap bind to
//     the concrete Map at compile time, stack-pointer arguments to direct
//     slices; the call devirtualizes to the helper's body.
//
// Each instruction becomes one closure of type copFn returning the next
// closure to run (or nil to stop); straight-line patterns additionally fuse
// (runs of constant stack stores, load+store pairs) so several
// instructions execute per indirect call. The dispatch loop is
// runCompiled's `for f != nil { f = f(ec) }`.
//
// Anything the compiler cannot prove makes it decline the whole program
// with a reason; Run then falls back to the interpreter, which remains the
// reference semantics. Compiled and interpreted execution are bit-identical
// — same R0, same cost() accounting, same helper trace, printk, and map
// end-states — and the differential fuzz oracles enforce that.

// Decline reasons reported in CompileInfo.Reason and surfaced through
// ProcessorStats / `tsctl stats`.
const (
	// DeclineNoAnalysis: the program has no retained verifier analysis
	// (constructed without Load), so no proofs license any elision.
	DeclineNoAnalysis = "no-analysis"
	// DeclineBackEdge: the program contains a backward jump. Bounded loops
	// stay on the interpreter, whose runtime instruction budget is the
	// backstop behind the verifier's trip-count reasoning.
	DeclineBackEdge = "back-edge"
	// DeclineUnsupportedOpcode: an instruction the compiler has no
	// template for.
	DeclineUnsupportedOpcode = "unsupported-opcode"
	// DeclineUnprovenAccess: a reached memory access whose base register
	// the analysis could not prove to be a dereferenceable pointer.
	DeclineUnprovenAccess = "unproven-access"
	// DeclineMalformed: control flow runs off the end of the program or a
	// jump targets an out-of-range pc. Unreachable for Load-verified
	// programs; kept as a defensive decline.
	DeclineMalformed = "malformed-control-flow"
)

// CompileInfo reports the outcome of a Compile attempt.
type CompileInfo struct {
	// Attempted is true once Compile has run.
	Attempted bool
	// Compiled is true when the program now dispatches through the JIT.
	Compiled bool
	// Reason is the decline reason when Compiled is false ("" otherwise).
	Reason string
	// Insns is the static instruction count.
	Insns int
	// FusedInsns counts instructions folded into multi-instruction
	// closures (store runs, load+store pairs).
	FusedInsns int
	// DirectCalls counts helper call sites devirtualized to direct
	// closures (the rest go through the interpreter's helper dispatcher).
	DirectCalls int
	// ElidedChecks counts memory accesses and helper pointer arguments
	// whose runtime tag/bounds checks were dropped under verifier proofs.
	ElidedChecks int
}

// copFn is one compiled instruction (or fused group): execute against ec,
// return the next closure, or nil when the program exits or faults (the
// latter sets ec.err).
type copFn func(ec *execState) copFn

type compiledProg struct {
	entry copFn
	fns   []copFn
}

// Compile attempts to JIT the program. On success subsequent Run calls
// dispatch through the compiled form; on decline they keep interpreting.
// Compile is meant to be called at load time, before the program is
// attached; it is not synchronized against concurrent Run.
func (lp *LoadedProgram) Compile() CompileInfo {
	info := lp.compileProgram()
	lp.compileInfo = info
	return info
}

// CompileInfo returns the outcome of the last Compile call (zero value if
// Compile was never called).
func (lp *LoadedProgram) CompileInfo() CompileInfo { return lp.compileInfo }

// ProgramJITStats is a point-in-time snapshot of one program's compile
// outcome and dispatch counters, for stats surfaces.
type ProgramJITStats struct {
	Attempted     bool
	Compiled      bool
	DeclineReason string
	CompiledRuns  int64
	InterpRuns    int64
	RuntimeFaults int64
}

// JITStats snapshots the program's compile outcome and dispatch counters.
func (lp *LoadedProgram) JITStats() ProgramJITStats {
	return ProgramJITStats{
		Attempted:     lp.compileInfo.Attempted,
		Compiled:      lp.compileInfo.Compiled,
		DeclineReason: lp.compileInfo.Reason,
		CompiledRuns:  lp.compiledRuns.Load(),
		InterpRuns:    lp.interpRuns.Load(),
		RuntimeFaults: lp.runtimeFaults.Load(),
	}
}

func (lp *LoadedProgram) compileProgram() CompileInfo {
	info := CompileInfo{Attempted: true, Insns: len(lp.prog.Insns)}
	if lp.analysis == nil {
		info.Reason = DeclineNoAnalysis
		return info
	}
	for _, in := range lp.prog.Insns {
		if isJump(in.Op) && in.Off < 0 {
			info.Reason = DeclineBackEdge
			return info
		}
	}
	cc := &compiler{lp: lp, p: lp.prog, a: lp.analysis, info: info}
	cc.fns = make([]copFn, len(cc.p.Insns))
	cc.callBodies = make([]func(*execState), len(cc.p.Insns))
	if !cc.markTargets() {
		cc.info.Reason = DeclineMalformed
		return cc.info
	}
	for pc := range cc.p.Insns {
		f, reason := cc.buildInsn(pc, cc.p.Insns[pc])
		if reason != "" {
			cc.info.Reason = reason
			return cc.info
		}
		cc.fns[pc] = f
	}
	cc.fuse()
	lp.compiled.Store(&compiledProg{entry: cc.fns[0], fns: cc.fns})
	cc.info.Compiled = true
	return cc.info
}

// runCompiled drives the closure-threaded form. There is no instruction
// budget check (no back-edges, so executed ≤ static length) and no
// per-access error plumbing; a verifier/compiler disagreement surfaces as
// a Go panic, converted here to ErrRuntime so the caller-visible contract
// matches the interpreter's.
func (lp *LoadedProgram) runCompiled(c *compiledProg, task *kernel.Task, args []uint64) (r0 uint64, costNS int64, err error) {
	lp.compiledRuns.Add(1)
	insnNS := task.Kernel().Profile.BPFInsnNS
	ec := lp.getExecState()
	ec.task, ec.args = task, args
	ec.regs[R10] = mkPtr(0, StackSize)
	defer func() {
		if rec := recover(); rec != nil {
			r0 = 0
			costNS = cost(ec.executed, ec.helperNS, insnNS)
			err = fmt.Errorf("%w: compiled execution panic: %v", ErrRuntime, rec)
		}
		ec.task, ec.args = nil, nil
		lp.putExecState(ec)
	}()
	for f := c.entry; f != nil; {
		f = f(ec)
	}
	costNS = cost(ec.executed, ec.helperNS, insnNS)
	if ec.err != nil {
		return 0, costNS, ec.err
	}
	return ec.regs[R0], costNS, nil
}

// getExecState returns a recycled execution state. Registers are zeroed
// (the interpreter starts from zero registers and trace capture may read
// helper-argument registers); the 512-byte stack is deliberately left
// dirty — the verifier rejects any read of a stack byte the program did
// not write this invocation, so stale contents are unobservable. A
// single-slot atomic cache fronts the sync.Pool: marker programs run
// back-to-back on one task, so the common case is an uncontended swap.
func (lp *LoadedProgram) getExecState() *execState {
	ec := lp.ecCache.Swap(nil)
	if ec == nil {
		v := lp.execPool.Get()
		if v == nil {
			return &execState{}
		}
		ec = v.(*execState)
	}
	ec.regs = [regSlots]uint64{}
	ec.objects = ec.objects[:0]
	ec.executed = 0
	ec.helperNS = 0
	ec.err = nil
	return ec
}

func (lp *LoadedProgram) putExecState(ec *execState) {
	if !lp.ecCache.CompareAndSwap(nil, ec) {
		lp.execPool.Put(ec)
	}
}

type compiler struct {
	lp       *LoadedProgram
	p        *Program
	a        *Analysis
	fns      []copFn
	isTarget []bool
	info     CompileInfo
	// callBodies[pc] holds the devirtualized, fault-free body of the
	// helper call at pc (nil when the call fell back to the generic
	// dispatcher); the fuser absorbs these into superblocks.
	callBodies []func(*execState)
}

// markTargets records which pcs are explicit jump targets (fusion must not
// swallow them as run interiors) and validates jump ranges.
func (cc *compiler) markTargets() bool {
	cc.isTarget = make([]bool, len(cc.p.Insns))
	for pc, in := range cc.p.Insns {
		if !isJump(in.Op) {
			continue
		}
		tgt := pc + 1 + int(in.Off)
		if tgt < 0 || tgt >= len(cc.p.Insns) {
			return false
		}
		cc.isTarget[tgt] = true
	}
	return true
}

// next returns the dispatch slot for the instruction after pc. Closures
// capture the slot address, not its value, so fusion pass replacements
// take effect everywhere.
func (cc *compiler) next(pc int) (*copFn, bool) {
	if pc+1 >= len(cc.fns) {
		return nil, false
	}
	return &cc.fns[pc+1], true
}

func (cc *compiler) slot(pc int) *copFn { return &cc.fns[pc] }

// trap guards statically-dead pcs: verified control flow can never reach
// them, so hitting one means the analysis and the runtime disagree — fault
// loudly rather than execute unverified code.
func (cc *compiler) trap(pc int) copFn {
	return func(ec *execState) copFn {
		ec.executed++
		ec.err = fmt.Errorf("%w: compiled execution reached statically-dead pc %d", ErrRuntime, pc)
		return nil
	}
}

func (cc *compiler) buildInsn(pc int, in Insn) (copFn, string) {
	if !cc.a.Reached(pc) {
		return cc.trap(pc), ""
	}
	switch {
	case in.Op == OpExit:
		return func(ec *execState) copFn {
			ec.executed++
			return nil
		}, ""

	case in.Op == OpMovImm:
		next, ok := cc.next(pc)
		if !ok {
			return nil, DeclineMalformed
		}
		dst, imm := in.Dst, uint64(in.Imm)
		return func(ec *execState) copFn {
			ec.regs[dst] = imm
			ec.executed++
			return *next
		}, ""
	case in.Op == OpMovReg:
		next, ok := cc.next(pc)
		if !ok {
			return nil, DeclineMalformed
		}
		dst, src := in.Dst, in.Src
		return func(ec *execState) copFn {
			ec.regs[dst] = ec.regs[src]
			ec.executed++
			return *next
		}, ""

	case isALU(in.Op):
		return cc.buildALU(pc, in)

	case in.Op == OpLoadMapPtr:
		next, ok := cc.next(pc)
		if !ok {
			return nil, DeclineMalformed
		}
		dst, handle := in.Dst, mapTag|uint64(in.Imm)
		return func(ec *execState) copFn {
			ec.regs[dst] = handle
			ec.executed++
			return *next
		}, ""

	case in.Op == OpLoad:
		return cc.buildLoad(pc, in)
	case in.Op == OpStore, in.Op == OpStoreImm:
		return cc.buildStore(pc, in)

	case in.Op == OpJa:
		tgt := cc.slot(pc + 1 + int(in.Off))
		return func(ec *execState) copFn {
			ec.executed++
			return *tgt
		}, ""
	case isCondJump(in.Op):
		return cc.buildCondJump(pc, in)

	case in.Op == OpCall:
		return cc.buildCall(pc, in)
	}
	return nil, DeclineUnsupportedOpcode
}

// aluFunc returns the scalar semantics of op on raw 64-bit register values,
// exactly matching evalALU (which operates on int64 bit patterns).
func aluFunc(op Op) func(a, b uint64) uint64 {
	switch op {
	case OpAddImm, OpAddReg:
		return func(a, b uint64) uint64 { return a + b }
	case OpSubImm, OpSubReg:
		return func(a, b uint64) uint64 { return a - b }
	case OpMulImm, OpMulReg:
		return func(a, b uint64) uint64 { return a * b }
	case OpDivImm, OpDivReg:
		return func(a, b uint64) uint64 {
			if b == 0 {
				return 0
			}
			return a / b
		}
	case OpModImm, OpModReg:
		return func(a, b uint64) uint64 {
			if b == 0 {
				return 0
			}
			return a % b
		}
	case OpAndImm, OpAndReg:
		return func(a, b uint64) uint64 { return a & b }
	case OpOrImm, OpOrReg:
		return func(a, b uint64) uint64 { return a | b }
	case OpXorImm, OpXorReg:
		return func(a, b uint64) uint64 { return a ^ b }
	case OpLshImm, OpLshReg:
		return func(a, b uint64) uint64 { return a << (b & 63) }
	case OpRshImm, OpRshReg:
		return func(a, b uint64) uint64 { return a >> (b & 63) }
	case OpArshImm, OpArshReg:
		return func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) }
	case OpNeg:
		return func(a, _ uint64) uint64 { return -a }
	}
	return nil
}

func (cc *compiler) buildALU(pc int, in Insn) (copFn, string) {
	next, ok := cc.next(pc)
	if !ok {
		return nil, DeclineMalformed
	}
	dst := in.Dst
	if cc.lp.ptrALU[pc] {
		// Verified pointer arithmetic: add/sub on a tagged pointer keeps
		// the object id and moves the 32-bit address, same as the
		// interpreter's ptrALU path.
		if isRegSrc(in.Op) {
			src := in.Src
			neg := in.Op == OpSubReg
			return func(ec *execState) copFn {
				d := ec.regs[dst]
				delta := int64(ec.regs[src])
				if neg {
					delta = -delta
				}
				ec.regs[dst] = mkPtr(ptrObj(d), uint32(int64(ptrAddr(d))+delta))
				ec.executed++
				return *next
			}, ""
		}
		delta := in.Imm
		if in.Op == OpSubImm {
			delta = -delta
		}
		d64 := delta
		return func(ec *execState) copFn {
			d := ec.regs[dst]
			ec.regs[dst] = mkPtr(ptrObj(d), uint32(int64(ptrAddr(d))+d64))
			ec.executed++
			return *next
		}, ""
	}
	alu := aluFunc(in.Op)
	if alu == nil {
		return nil, DeclineUnsupportedOpcode
	}
	if isRegSrc(in.Op) {
		src := in.Src
		return func(ec *execState) copFn {
			ec.regs[dst] = alu(ec.regs[dst], ec.regs[src])
			ec.executed++
			return *next
		}, ""
	}
	imm := uint64(in.Imm)
	return func(ec *execState) copFn {
		ec.regs[dst] = alu(ec.regs[dst], imm)
		ec.executed++
		return *next
	}, ""
}

// memKind classifies a proven memory operand.
type memKind int

const (
	memBad        memKind = iota
	memStackExact         // constant stack index, proven in range
	memStackDyn           // stack base, runtime offset, proven in range
	memObjDyn             // map-value object, runtime offset, proven in range
)

type memRef struct {
	kind memKind
	idx  int // memStackExact: byte index into ec.stack
}

// resolveMem classifies the 8-byte access [r+off] at pc using the
// verifier's register state. The returned forms carry no runtime checks:
// rkPtrStack/rkPtrMapValue kinds were only assigned where checkStackRange
// or the map-value range check proved every byte in bounds.
func (cc *compiler) resolveMem(pc int, r Reg, off int32) memRef {
	st := &cc.a.states[pc].regs[r]
	switch st.kind {
	case rkPtrStack:
		if st.lo == st.hi {
			// Exact frame offset: runtime address is always
			// StackSize + lo (+ off), a compile-time constant.
			idx := StackSize + int(st.lo) + int(off)
			if idx >= 0 && idx+8 <= StackSize {
				return memRef{kind: memStackExact, idx: idx}
			}
		}
		return memRef{kind: memStackDyn}
	case rkPtrMapValue:
		return memRef{kind: memObjDyn}
	}
	return memRef{kind: memBad}
}

func (cc *compiler) buildLoad(pc int, in Insn) (copFn, string) {
	next, ok := cc.next(pc)
	if !ok {
		return nil, DeclineMalformed
	}
	dst := in.Dst
	m := cc.resolveMem(pc, in.Src, in.Off)
	cc.info.ElidedChecks++
	switch m.kind {
	case memStackExact:
		idx := m.idx
		return func(ec *execState) copFn {
			ec.regs[dst] = U64(ec.stack[idx : idx+8])
			ec.executed++
			return *next
		}, ""
	case memStackDyn:
		src, off := in.Src, int(in.Off)
		return func(ec *execState) copFn {
			a := int(ptrAddr(ec.regs[src])) + off
			ec.regs[dst] = U64(ec.stack[a : a+8])
			ec.executed++
			return *next
		}, ""
	case memObjDyn:
		src, off := in.Src, int(in.Off)
		return func(ec *execState) copFn {
			v := ec.regs[src]
			b := ec.objects[ptrObj(v)-1]
			a := int(ptrAddr(v)) + off
			ec.regs[dst] = U64(b[a : a+8])
			ec.executed++
			return *next
		}, ""
	}
	cc.info.ElidedChecks--
	return nil, DeclineUnprovenAccess
}

func (cc *compiler) buildStore(pc int, in Insn) (copFn, string) {
	next, ok := cc.next(pc)
	if !ok {
		return nil, DeclineMalformed
	}
	m := cc.resolveMem(pc, in.Dst, in.Off)
	if m.kind == memBad {
		return nil, DeclineUnprovenAccess
	}
	cc.info.ElidedChecks++
	// value source: register for OpStore, immediate for OpStoreImm
	if in.Op == OpStoreImm {
		imm := uint64(in.Imm)
		switch m.kind {
		case memStackExact:
			idx := m.idx
			return func(ec *execState) copFn {
				PutU64(ec.stack[idx:idx+8], imm)
				ec.executed++
				return *next
			}, ""
		case memStackDyn:
			base, off := in.Dst, int(in.Off)
			return func(ec *execState) copFn {
				a := int(ptrAddr(ec.regs[base])) + off
				PutU64(ec.stack[a:a+8], imm)
				ec.executed++
				return *next
			}, ""
		default: // memObjDyn
			base, off := in.Dst, int(in.Off)
			return func(ec *execState) copFn {
				v := ec.regs[base]
				b := ec.objects[ptrObj(v)-1]
				a := int(ptrAddr(v)) + off
				PutU64(b[a:a+8], imm)
				ec.executed++
				return *next
			}, ""
		}
	}
	src := in.Src
	switch m.kind {
	case memStackExact:
		idx := m.idx
		return func(ec *execState) copFn {
			PutU64(ec.stack[idx:idx+8], ec.regs[src])
			ec.executed++
			return *next
		}, ""
	case memStackDyn:
		base, off := in.Dst, int(in.Off)
		return func(ec *execState) copFn {
			a := int(ptrAddr(ec.regs[base])) + off
			PutU64(ec.stack[a:a+8], ec.regs[src])
			ec.executed++
			return *next
		}, ""
	default: // memObjDyn
		base, off := in.Dst, int(in.Off)
		return func(ec *execState) copFn {
			v := ec.regs[base]
			b := ec.objects[ptrObj(v)-1]
			a := int(ptrAddr(v)) + off
			PutU64(b[a:a+8], ec.regs[src])
			ec.executed++
			return *next
		}, ""
	}
}

// condFunc returns the comparison semantics of a conditional jump, exactly
// matching the interpreter's condTrue (all compares unsigned).
func condFunc(op Op) func(a, b uint64) bool {
	switch op {
	case OpJeqImm, OpJeqReg:
		return func(a, b uint64) bool { return a == b }
	case OpJneImm, OpJneReg:
		return func(a, b uint64) bool { return a != b }
	case OpJgtImm, OpJgtReg:
		return func(a, b uint64) bool { return a > b }
	case OpJgeImm, OpJgeReg:
		return func(a, b uint64) bool { return a >= b }
	case OpJltImm, OpJltReg:
		return func(a, b uint64) bool { return a < b }
	case OpJleImm, OpJleReg:
		return func(a, b uint64) bool { return a <= b }
	case OpJsetImm:
		return func(a, b uint64) bool { return a&b != 0 }
	}
	return nil
}

func (cc *compiler) buildCondJump(pc int, in Insn) (copFn, string) {
	fall, ok := cc.next(pc)
	if !ok {
		return nil, DeclineMalformed
	}
	taken := cc.slot(pc + 1 + int(in.Off))
	pred := condFunc(in.Op)
	if pred == nil {
		return nil, DeclineUnsupportedOpcode
	}
	dst := in.Dst
	if isRegSrc(in.Op) {
		src := in.Src
		return func(ec *execState) copFn {
			ec.executed++
			if pred(ec.regs[dst], ec.regs[src]) {
				return *taken
			}
			return *fall
		}, ""
	}
	imm := uint64(in.Imm)
	return func(ec *execState) copFn {
		ec.executed++
		if pred(ec.regs[dst], imm) {
			return *taken
		}
		return *fall
	}, ""
}

// constMap resolves the map a helper call's R1 is proven to hold, or nil.
func (cc *compiler) constMap(st *absState, r Reg) Map {
	rs := &st.regs[r]
	if rs.kind != rkConstMap {
		return nil
	}
	idx := int(rs.mapIdx)
	if idx < 0 || idx >= len(cc.p.Maps) {
		return nil
	}
	return cc.p.Maps[idx]
}

// stackArg builds a fetcher for a size-byte stack argument in register r,
// or nil when the analysis cannot prove one (caller falls back to the
// generic helper dispatcher). Mirrors the interpreter's stackBytes:
// size 0 yields nil bytes.
func (cc *compiler) stackArg(st *absState, r Reg, size int) func(*execState) []byte {
	if size <= 0 {
		return func(*execState) []byte { return nil }
	}
	rs := &st.regs[r]
	if rs.kind != rkPtrStack {
		return nil
	}
	if rs.lo == rs.hi {
		idx := StackSize + int(rs.lo)
		if idx >= 0 && idx+size <= StackSize {
			cc.info.ElidedChecks++
			return func(ec *execState) []byte { return ec.stack[idx : idx+size] }
		}
	}
	cc.info.ElidedChecks++
	reg := r
	return func(ec *execState) []byte {
		a := int(ptrAddr(ec.regs[reg]))
		return ec.stack[a : a+size]
	}
}

// stackArgConst reports the exact stack index of a size-byte argument in
// register r when the analysis pins the pointer to a single slot —
// letting helper bodies slice the stack directly with no fetcher closure.
func (cc *compiler) stackArgConst(st *absState, r Reg, size int) (int, bool) {
	rs := &st.regs[r]
	if size <= 0 || rs.kind != rkPtrStack || rs.lo != rs.hi {
		return 0, false
	}
	idx := StackSize + int(rs.lo)
	if idx < 0 || idx+size > StackSize {
		return 0, false
	}
	return idx, true
}

// scalarConst reports the proven constant value of register r, if any.
func scalarConst(st *absState, r Reg) (int64, bool) {
	rs := &st.regs[r]
	if rs.kind != rkScalar || !rs.vr.IsConst() {
		return 0, false
	}
	return int64(rs.vr.Const()), true
}

// buildCall devirtualizes helper calls. Pure helpers (reads of task/kernel
// state) always compile to direct bodies. Impure helpers additionally
// need their map handle proven rkConstMap so the concrete Map binds at
// compile time; they preserve the interpreter's observable order — R0 set
// before the trace record — and its exact helperNS charging. Any call the
// compiler cannot prove out falls back to the interpreter's dispatcher
// through a generic closure, which is always correct.
//
// A proven body is also recorded in cc.callBodies: it never faults (the
// verifier's argument-type proofs rule out every error path), so the
// superblock fuser may absorb the call into a block as a muHelperCall
// micro-op instead of ending the block at it.
func (cc *compiler) buildCall(pc int, in Insn) (copFn, string) {
	next, ok := cc.next(pc)
	if !ok {
		return nil, DeclineMalformed
	}
	lp := cc.lp
	id := in.Imm
	if body := cc.callBody(pc, in); body != nil {
		cc.info.DirectCalls++
		cc.callBodies[pc] = body
		return func(ec *execState) copFn {
			body(ec)
			ec.executed++
			return *next
		}, ""
	}
	return func(ec *execState) copFn {
		ec.executed++
		ns, err := lp.call(ec, id)
		ec.helperNS += ns
		if err != nil {
			ec.err = err
			return nil
		}
		if lp.traceOn.Load() {
			lp.recordCall(ec, id)
		}
		return *next
	}, ""
}

// callBody builds the fault-free devirtualized body for a helper call, or
// nil when the analysis cannot prove one (unknown helper, unproven map
// handle or argument pointer — the caller falls back to the generic
// dispatcher, which reproduces the interpreter's runtime faults).
func (cc *compiler) callBody(pc int, in Insn) func(*execState) {
	lp := cc.lp
	id := in.Imm
	spec, known := HelperByID(id)
	if !known {
		return nil
	}
	costNS := spec.CostNS
	st := &cc.a.states[pc]

	switch id {
	case HelperGetPID:
		return func(ec *execState) {
			ec.regs[R0] = uint64(ec.task.PID)
			ec.helperNS += costNS
		}
	case HelperGetTaskGen:
		return func(ec *execState) {
			ec.regs[R0] = ec.task.Gen()
			ec.helperNS += costNS
		}
	case HelperGetCPU:
		return func(ec *execState) {
			ec.regs[R0] = uint64(ec.task.CPU())
			ec.helperNS += costNS
		}
	case HelperKtime:
		return func(ec *execState) {
			ec.regs[R0] = uint64(ec.task.Now())
			ec.helperNS += costNS
		}
	case HelperGetArg:
		return func(ec *execState) {
			i := int(ec.regs[R1])
			if i >= 0 && i < len(ec.args) {
				ec.regs[R0] = ec.args[i]
			} else {
				ec.regs[R0] = 0
			}
			ec.helperNS += costNS
		}
	case HelperReadCounter:
		return func(ec *execState) {
			ec.regs[R0] = readCounterHelper(ec.task, ec.regs[R1], ec.regs[R2])
			ec.helperNS += costNS
		}
	case HelperReadIOAC:
		return func(ec *execState) {
			ec.regs[R0] = readIOACHelper(ec.task, ec.regs[R1])
			ec.helperNS += costNS
		}
	case HelperReadSock:
		return func(ec *execState) {
			ec.regs[R0] = readSockHelper(ec.task, ec.regs[R1])
			ec.helperNS += costNS
		}

	case HelperTracePrintk:
		return func(ec *execState) {
			lp.printkMu.Lock()
			lp.printk = append(lp.printk, ec.regs[R1])
			lp.printkMu.Unlock()
			ec.regs[R0] = 0
			ec.helperNS += costNS
			if lp.traceOn.Load() {
				lp.recordCall(ec, id)
			}
		}

	case HelperMapLookup:
		m := cc.constMap(st, R1)
		if m == nil {
			return nil
		}
		kf := cc.stackArg(st, R2, m.KeySize())
		if kf == nil {
			return nil
		}
		return func(ec *execState) {
			v := m.Lookup(kf(ec))
			if v == nil {
				ec.regs[R0] = 0
			} else {
				ec.regs[R0] = ec.registerObject(v)
			}
			ec.helperNS += costNS
			if lp.traceOn.Load() {
				lp.recordCall(ec, id)
			}
		}
	case HelperMapUpdate:
		m := cc.constMap(st, R1)
		if m == nil {
			return nil
		}
		kf := cc.stackArg(st, R2, m.KeySize())
		vf := cc.stackArg(st, R3, m.ValueSize())
		if kf == nil || vf == nil {
			return nil
		}
		return func(ec *execState) {
			if uerr := m.Update(kf(ec), vf(ec)); uerr != nil {
				ec.regs[R0] = ^uint64(0)
			} else {
				ec.regs[R0] = 0
			}
			ec.helperNS += costNS
			if lp.traceOn.Load() {
				lp.recordCall(ec, id)
			}
		}
	case HelperMapDelete:
		m := cc.constMap(st, R1)
		if m == nil {
			return nil
		}
		ks := m.KeySize()
		kf := cc.stackArg(st, R2, ks)
		if kf == nil {
			return nil
		}
		// Constant-slot key into a hash map — the dominant delete shape
		// (the stale-entry reaper issues 16 of these per run). Bind the
		// concrete map type and the proven stack slot so the body is one
		// flat call with no fetcher closure or interface dispatch.
		if hm, ok := m.(*HashMap); ok {
			if idx, exact := cc.stackArgConst(st, R2, ks); exact {
				return func(ec *execState) {
					if hm.Delete(ec.stack[idx : idx+ks]) {
						ec.regs[R0] = 1
					} else {
						ec.regs[R0] = 0
					}
					ec.helperNS += costNS
					if lp.traceOn.Load() {
						lp.recordCall(ec, id)
					}
				}
			}
		}
		return func(ec *execState) {
			if m.Delete(kf(ec)) {
				ec.regs[R0] = 1
			} else {
				ec.regs[R0] = 0
			}
			ec.helperNS += costNS
			if lp.traceOn.Load() {
				lp.recordCall(ec, id)
			}
		}
	case HelperStackPush:
		sm, _ := cc.constMap(st, R1).(*StackMap)
		if sm == nil {
			return nil
		}
		vf := cc.stackArg(st, R2, sm.ValueSize())
		if vf == nil {
			return nil
		}
		return func(ec *execState) {
			if perr := sm.Push(vf(ec)); perr != nil {
				ec.regs[R0] = ^uint64(0)
			} else {
				ec.regs[R0] = 0
			}
			ec.helperNS += costNS
			if lp.traceOn.Load() {
				lp.recordCall(ec, id)
			}
		}
	case HelperStackPop:
		sm, _ := cc.constMap(st, R1).(*StackMap)
		if sm == nil {
			return nil
		}
		df := cc.stackArg(st, R2, sm.ValueSize())
		if df == nil {
			return nil
		}
		return func(ec *execState) {
			v, perr := sm.Pop()
			if perr != nil {
				ec.regs[R0] = 1
			} else {
				copy(df(ec), v)
				ec.regs[R0] = 0
			}
			ec.helperNS += costNS
			if lp.traceOn.Load() {
				lp.recordCall(ec, id)
			}
		}
	case HelperPerfOutput:
		m := cc.constMap(st, R1)
		rb, ok := m.(PerfOutputTarget)
		if m == nil || !ok {
			return nil
		}
		size64, isConst := scalarConst(st, R3)
		if !isConst || size64 < 0 {
			return nil
		}
		size := int(size64)
		df := cc.stackArg(st, R2, size)
		if df == nil {
			return nil
		}
		total := costNS + int64(size/16)
		return func(ec *execState) {
			rb.SubmitFrom(ec.task.CPU(), df(ec))
			ec.regs[R0] = 0
			ec.helperNS += total
			if lp.traceOn.Load() {
				lp.recordCall(ec, id)
			}
		}
	}
	return nil
}

// fuse replaces maximal straight-line runs of simple instructions —
// moves, ALU, proven loads and stores — with superblock closures. A
// superblock pre-decodes its instructions into resolved micro-ops
// (constant stack indices, pre-negated pointer deltas, pre-tagged map
// handles) and executes them in one tight switch-dispatch loop, so the
// per-instruction indirect call, next-slot load, and executed-counter
// update of closure threading are paid once per block instead of once per
// instruction. Interior pcs keep their individual closures (they are never
// jump targets, so only the fused head can be entered), and the head's
// dispatch slot is overwritten so every predecessor picks up the fused
// form. Jumps, helper calls, and Exit stay as closures: they end a block.
func (cc *compiler) fuse() {
	for pc := 0; pc < len(cc.p.Insns); {
		if n := cc.fuseBlock(pc); n > 0 {
			pc += n
			continue
		}
		pc++
	}
}

// fuseBlock fuses the maximal micro-compilable run starting at pc.
// Returns the run length in instructions when ≥2 fused, else 0. The
// collected per-instruction micro-ops are peephole-combined into pattern
// super-ops before the block closure is built, so one dispatched op can
// retire several instructions; the block's instruction count is tracked
// separately for exact cost accounting.
func (cc *compiler) fuseBlock(pc int) int {
	var ops []microOp
	for q := pc; q < len(cc.p.Insns); q++ {
		if q > pc && cc.isTarget[q] {
			break
		}
		if !cc.a.Reached(q) {
			break
		}
		op, ok := cc.microFor(q, cc.p.Insns[q])
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	n := len(ops)
	if n < 2 {
		return 0
	}
	next := cc.slot(pc + n)
	fused := peephole(ops)
	cc.fns[pc] = blockRunner(fused, n, next)
	cc.info.FusedInsns += n
	return n
}

// microKind discriminates pre-decoded superblock micro-ops. Single-insn
// kinds are exactly one program instruction with operands fully resolved;
// the pattern super-ops below the marker retire a short idiomatic
// instruction sequence (codegen emits the same shapes over and over) in
// one dispatch, replaying every architectural side effect of the original
// sequence bit-for-bit.
type microKind uint8

const (
	muMovImm microKind = iota // dst = imm (also LoadMapPtr: imm pre-tagged)
	muMovReg                  // dst = src

	muAddImm
	muAddReg
	muSubImm
	muSubReg
	muMulImm
	muMulReg
	muDivImm
	muDivReg
	muModImm
	muModReg
	muAndImm
	muAndReg
	muOrImm
	muOrReg
	muXorImm
	muXorReg
	muLshImm
	muLshReg
	muRshImm
	muRshReg
	muArshImm
	muArshReg
	muNeg

	muPtrAddImm // dst = ptr(dst) + int64(imm), delta pre-negated for Sub
	muPtrAddReg // dst = ptr(dst) + int64(src)
	muPtrSubReg // dst = ptr(dst) - int64(src)

	muLoadStackExact // dst = stack[idx]
	muLoadStackDyn   // dst = stack[addr(src)+idx]
	muLoadObjDyn     // dst = obj(src)[addr(src)+idx]
	muStoreImmExact  // stack[idx] = imm
	muStoreImmDyn    // stack[addr(base)+idx] = imm  (base in dst)
	muStoreImmObj    // obj(base)[addr(base)+idx] = imm
	muStoreRegExact  // stack[idx] = src
	muStoreRegDyn    // stack[addr(base)+idx] = src
	muStoreRegObj    // obj(base)[addr(base)+idx] = src

	// Pure helper calls. The verifier admits only helpers that exist, and
	// recordCall skips Pure helpers, so these fuse into blocks with no
	// trace or fault plumbing; imm carries the helper's CostNS.
	muCallGetPID
	muCallGetTaskGen
	muCallGetCPU
	muCallKtime
	muCallGetArg      // r0 = args[r1] (0 if OOB)
	muCallReadCounter // r0 = counter r1, part r2
	muCallReadIOAC    // r0 = task ioac field r1
	muCallReadSock    // r0 = tcp_sock field r1

	// Pattern super-ops (see peephole).
	muStoreZeroRun    // stack[idx : idx+8*idx2] = 0 (idx2 consecutive st 0)
	muLoadObjStore    // x = obj(src)[addr(src)+idx2]; stack[idx] = x
	muLoadStackStore  // dst = stack[idx2]; stack[idx] = dst
	muGetArgStore     // r1 = imm; r0 = args[imm] (0 if OOB); stack[idx] = r0; +idx2 ns
	muReadCounterLoad // r1 = imm; r2 = src; r0 = read(imm, src); +idx2 ns
	muReadCounterStore
	muScaleStore // the fixed-point normalization idiom, see matchScaleStore

	// Second-pass super-ops built from first-pass outputs (see peephole).
	muDeltaObjStore   // the END-marker delta quad, see matchDeltaObjStore
	muAddImmObjStore  // read-modify-write increment, see matchAddImmObjStore
	muProbeScaleStore // a whole normalized counter probe, see matchProbe

	// muHelperCall runs a devirtualized impure-helper body (fn). The
	// verifier's argument proofs make these bodies fault-free, so the
	// call no longer ends the block.
	muHelperCall
)

// microOp is one pre-decoded instruction — or, for pattern super-ops, a
// short fused sequence. Scalar ops fit the first 24 bytes; fn is only
// set for muHelperCall.
type microOp struct {
	kind        microKind
	dst, src, x uint8
	idx         int32  // resolved stack index, or load/store offset
	idx2        int32  // second resolved index / count / helper cost
	imm         uint64 // immediate / pre-computed constant
	fn          func(*execState)
}

// regMask makes a byte register index provably in-bounds for the padded
// register file, eliminating the bounds check in every blockRunner arm.
// Fused indices are architectural registers (< numRegs), so masking never
// changes the index.
const regMask = regSlots - 1

// aluMicro maps a scalar ALU opcode to its micro kind.
func aluMicro(op Op) (microKind, bool) {
	switch op {
	case OpAddImm:
		return muAddImm, true
	case OpAddReg:
		return muAddReg, true
	case OpSubImm:
		return muSubImm, true
	case OpSubReg:
		return muSubReg, true
	case OpMulImm:
		return muMulImm, true
	case OpMulReg:
		return muMulReg, true
	case OpDivImm:
		return muDivImm, true
	case OpDivReg:
		return muDivReg, true
	case OpModImm:
		return muModImm, true
	case OpModReg:
		return muModReg, true
	case OpAndImm:
		return muAndImm, true
	case OpAndReg:
		return muAndReg, true
	case OpOrImm:
		return muOrImm, true
	case OpOrReg:
		return muOrReg, true
	case OpXorImm:
		return muXorImm, true
	case OpXorReg:
		return muXorReg, true
	case OpLshImm:
		return muLshImm, true
	case OpLshReg:
		return muLshReg, true
	case OpRshImm:
		return muRshImm, true
	case OpRshReg:
		return muRshReg, true
	case OpArshImm:
		return muArshImm, true
	case OpArshReg:
		return muArshReg, true
	case OpNeg:
		return muNeg, true
	}
	return 0, false
}

// callMicro maps a fusible pure helper call to its micro kind. Impure
// helpers (maps, stacks, perf output, printk) stay closures: they need
// trace recording and object registration, and they end a block.
func callMicro(id int64) (microKind, bool) {
	switch id {
	case HelperGetPID:
		return muCallGetPID, true
	case HelperGetTaskGen:
		return muCallGetTaskGen, true
	case HelperGetCPU:
		return muCallGetCPU, true
	case HelperKtime:
		return muCallKtime, true
	case HelperGetArg:
		return muCallGetArg, true
	case HelperReadCounter:
		return muCallReadCounter, true
	case HelperReadIOAC:
		return muCallReadIOAC, true
	case HelperReadSock:
		return muCallReadSock, true
	}
	return 0, false
}

// microFor pre-decodes one instruction into a micro-op, or reports that it
// must stay a closure (jumps, impure calls, Exit). The semantics of every
// kind mirror the per-instruction closures in buildInsn exactly; buildInsn
// has already validated (and counted elisions for) every access, so this
// pass never declines and never touches the info counters.
func (cc *compiler) microFor(pc int, in Insn) (microOp, bool) {
	switch {
	case in.Op == OpMovImm:
		return microOp{kind: muMovImm, dst: uint8(in.Dst), imm: uint64(in.Imm)}, true
	case in.Op == OpMovReg:
		if in.Src == R10 {
			// R10 is the verifier-enforced read-only frame pointer, so a
			// copy of it is the constant mkPtr(0, StackSize) — materialize
			// it as an immediate so a following pointer-ALU step folds.
			return microOp{kind: muMovImm, dst: uint8(in.Dst), imm: mkPtr(0, StackSize)}, true
		}
		return microOp{kind: muMovReg, dst: uint8(in.Dst), src: uint8(in.Src)}, true
	case in.Op == OpLoadMapPtr:
		return microOp{kind: muMovImm, dst: uint8(in.Dst), imm: mapTag | uint64(in.Imm)}, true

	case in.Op == OpCall:
		if k, ok := callMicro(in.Imm); ok {
			spec, known := HelperByID(in.Imm)
			if known && spec.Pure {
				return microOp{kind: k, imm: uint64(spec.CostNS)}, true
			}
		}
		if body := cc.callBodies[pc]; body != nil {
			return microOp{kind: muHelperCall, fn: body}, true
		}
		return microOp{}, false

	case isALU(in.Op):
		if cc.lp.ptrALU[pc] {
			if isRegSrc(in.Op) {
				k := muPtrAddReg
				if in.Op == OpSubReg {
					k = muPtrSubReg
				}
				return microOp{kind: k, dst: uint8(in.Dst), src: uint8(in.Src)}, true
			}
			delta := in.Imm
			if in.Op == OpSubImm {
				delta = -delta
			}
			return microOp{kind: muPtrAddImm, dst: uint8(in.Dst), imm: uint64(delta)}, true
		}
		k, ok := aluMicro(in.Op)
		if !ok {
			return microOp{}, false
		}
		if isRegSrc(in.Op) {
			return microOp{kind: k, dst: uint8(in.Dst), src: uint8(in.Src)}, true
		}
		return microOp{kind: k, dst: uint8(in.Dst), imm: uint64(in.Imm)}, true

	case in.Op == OpLoad:
		m := cc.resolveMem(pc, in.Src, in.Off)
		switch m.kind {
		case memStackExact:
			return microOp{kind: muLoadStackExact, dst: uint8(in.Dst), idx: int32(m.idx)}, true
		case memStackDyn:
			return microOp{kind: muLoadStackDyn, dst: uint8(in.Dst), src: uint8(in.Src), idx: in.Off}, true
		case memObjDyn:
			return microOp{kind: muLoadObjDyn, dst: uint8(in.Dst), src: uint8(in.Src), idx: in.Off}, true
		}
		return microOp{}, false

	case in.Op == OpStoreImm:
		m := cc.resolveMem(pc, in.Dst, in.Off)
		switch m.kind {
		case memStackExact:
			return microOp{kind: muStoreImmExact, idx: int32(m.idx), imm: uint64(in.Imm)}, true
		case memStackDyn:
			return microOp{kind: muStoreImmDyn, dst: uint8(in.Dst), idx: in.Off, imm: uint64(in.Imm)}, true
		case memObjDyn:
			return microOp{kind: muStoreImmObj, dst: uint8(in.Dst), idx: in.Off, imm: uint64(in.Imm)}, true
		}
		return microOp{}, false

	case in.Op == OpStore:
		m := cc.resolveMem(pc, in.Dst, in.Off)
		switch m.kind {
		case memStackExact:
			return microOp{kind: muStoreRegExact, src: uint8(in.Src), idx: int32(m.idx)}, true
		case memStackDyn:
			return microOp{kind: muStoreRegDyn, dst: uint8(in.Dst), src: uint8(in.Src), idx: in.Off}, true
		case memObjDyn:
			return microOp{kind: muStoreRegObj, dst: uint8(in.Dst), src: uint8(in.Src), idx: in.Off}, true
		}
		return microOp{}, false
	}
	return microOp{}, false
}

// peephole combines idiomatic micro-op sequences inside a block into
// pattern super-ops. Every pattern replays the full architectural effect
// of the instructions it absorbs — all intermediate register writes, the
// same division-by-zero and out-of-range results, the same helper cost —
// so it is observationally identical by construction, and the differential
// fuzz oracles check exactly that. Instruction accounting is untouched:
// the block charges its instruction count, not its op count.
func peephole(ops []microOp) []microOp {
	out := rewrite(ops, matchPattern)
	// A second pass matches super-ops produced by the first: a whole
	// counter probe is three counter-read ops plus the normalization
	// super-op, and the END-marker delta quad starts with a load the
	// first pass could not see past.
	return rewrite(out, matchPattern2)
}

// rewrite applies match greedily left to right, copying unmatched ops.
func rewrite(ops []microOp, match func([]microOp) (microOp, int)) []microOp {
	out := make([]microOp, 0, len(ops))
	for i := 0; i < len(ops); {
		if op, n := match(ops[i:]); n > 0 {
			out = append(out, op)
			i += n
			continue
		}
		out = append(out, ops[i])
		i++
	}
	return out
}

func matchPattern(w []microOp) (microOp, int) {
	if n := matchZeroRun(w); n > 0 {
		return microOp{kind: muStoreZeroRun, idx: w[0].idx, idx2: int32(n)}, n
	}
	if op, n := matchScaleStore(w); n > 0 {
		return op, n
	}
	if op, n := matchReadCounter(w); n > 0 {
		return op, n
	}
	if op, n := matchGetArgStore(w); n > 0 {
		return op, n
	}
	if len(w) >= 2 && w[0].kind == muMovImm &&
		w[1].kind == muPtrAddImm && w[1].dst == w[0].dst {
		// Constant-fold pointer arithmetic on a known base — the frame
		// address computation `movr rX, r10; sub rX, off` becomes one
		// immediate. mkPtr/ptrObj/ptrAddr are pure functions of the bits,
		// so the fold replays muPtrAddImm on the constant exactly.
		p := w[0].imm
		return microOp{kind: muMovImm, dst: w[0].dst,
			imm: mkPtr(ptrObj(p), uint32(int64(ptrAddr(p))+int64(w[1].imm)))}, 2
	}
	if len(w) >= 2 && w[1].kind == muStoreRegExact {
		// Load-then-spill pairs: codegen stages every sample field through
		// a scratch register into the output frame.
		if w[0].kind == muLoadObjDyn && w[1].src == w[0].dst {
			return microOp{kind: muLoadObjStore, src: w[0].src, x: w[0].dst,
				idx2: w[0].idx, idx: w[1].idx}, 2
		}
		if w[0].kind == muLoadStackExact && w[1].src == w[0].dst {
			return microOp{kind: muLoadStackStore, dst: w[0].dst,
				idx2: w[0].idx, idx: w[1].idx}, 2
		}
	}
	return microOp{}, 0
}

func matchPattern2(w []microOp) (microOp, int) {
	if op, n := matchKeyedCall(w); n > 0 {
		return op, n
	}
	if op, n := matchProbe(w); n > 0 {
		return op, n
	}
	if op, n := matchDeltaObjStore(w); n > 0 {
		return op, n
	}
	if op, n := matchAddImmObjStore(w); n > 0 {
		return op, n
	}
	if op, n := matchCallSetup(w); n > 0 {
		return op, n
	}
	return microOp{}, 0
}

// matchKeyedCall recognizes the slot-keyed map-call idiom — the stale
// entry reaper builds (gen<<S)+slot keys for all 16 recursion depths and
// deletes each one:
//
//	ldx rA, [fp-X]; lsh rA, S; add rA, SLOT; stx [fp-K], rA
//	ldmap r1, map[M]; (movr r2, r10; sub r2, off → folded mov)
//	call <devirtualized>
//
// The whole 8-instruction sequence (7 first-pass ops) bakes into one
// specialized closure that replays every register and stack write in
// program order before invoking the fault-free helper body.
func matchKeyedCall(w []microOp) (microOp, int) {
	if len(w) < 7 ||
		w[0].kind != muLoadStackExact ||
		w[1].kind != muLshImm || w[1].dst != w[0].dst ||
		w[2].kind != muAddImm || w[2].dst != w[0].dst ||
		w[3].kind != muStoreRegExact || w[3].src != w[0].dst ||
		w[4].kind != muMovImm ||
		w[5].kind != muMovImm ||
		w[6].kind != muHelperCall {
		return microOp{}, 0
	}
	a := w[0].dst & regMask
	x, k := w[0].idx, w[3].idx
	s, add := w[1].imm&63, w[2].imm
	d1, i1 := w[4].dst&regMask, w[4].imm
	d2, i2 := w[5].dst&regMask, w[5].imm
	f := w[6].fn
	// The reaper idiom accumulates each delete's result (`add r6, r0`)
	// right after the call; fold that add into the same closure so the
	// whole 9-instruction slot sweep is a single dispatch.
	if len(w) >= 8 && w[7].kind == muAddReg {
		ad, as := w[7].dst&regMask, w[7].src&regMask
		return microOp{kind: muHelperCall, fn: func(ec *execState) {
			v := U64(ec.stack[x:x+8])<<s + add
			ec.regs[a] = v
			PutU64(ec.stack[k:k+8], v)
			ec.regs[d1] = i1
			ec.regs[d2] = i2
			f(ec)
			ec.regs[ad] += ec.regs[as]
		}}, 8
	}
	return microOp{kind: muHelperCall, fn: func(ec *execState) {
		v := U64(ec.stack[x:x+8])<<s + add
		ec.regs[a] = v
		PutU64(ec.stack[k:k+8], v)
		ec.regs[d1] = i1
		ec.regs[d2] = i2
		f(ec)
	}}, 7
}

// matchCallSetup bakes a short run of constant setup ops — immediate
// register loads (map handles, folded frame pointers, sizes) and
// constant stack stores — into the devirtualized call they feed, so a
// whole `ldmap; mov; mov; call` sequence is one dispatch.
func matchCallSetup(w []microOp) (microOp, int) {
	n := 0
	for n < len(w)-1 && n < 3 &&
		(w[n].kind == muMovImm || w[n].kind == muStoreImmExact) {
		n++
	}
	if n == 0 || w[n].kind != muHelperCall {
		return microOp{}, 0
	}
	f := w[n].fn
	if n == 2 && w[0].kind == muMovImm && w[1].kind == muMovImm {
		d1, i1 := w[0].dst&regMask, w[0].imm
		d2, i2 := w[1].dst&regMask, w[1].imm
		return microOp{kind: muHelperCall, fn: func(ec *execState) {
			ec.regs[d1] = i1
			ec.regs[d2] = i2
			f(ec)
		}}, 3
	}
	setup := append([]microOp(nil), w[:n]...)
	return microOp{kind: muHelperCall, fn: func(ec *execState) {
		for i := range setup {
			op := &setup[i]
			if op.kind == muMovImm {
				ec.regs[op.dst&regMask] = op.imm
			} else {
				PutU64(ec.stack[op.idx:op.idx+8], op.imm)
			}
		}
		f(ec)
	}}, n + 1
}

// matchZeroRun recognizes the frame-zeroing prologue: ≥3 consecutive
// 8-byte stores of zero to ascending adjacent stack slots.
func matchZeroRun(w []microOp) int {
	n := 0
	for ; n < len(w); n++ {
		if w[n].kind != muStoreImmExact || w[n].imm != 0 ||
			w[n].idx != w[0].idx+int32(8*n) {
			break
		}
	}
	if n < 3 {
		return 0
	}
	return n
}

// matchReadCounter recognizes the counter-read idiom
//
//	mov r1, C; mov r2, PART; call read_perf_counter [; stx [fp-D], r0]
//
// with constant selector and part. The counter id goes in imm, the part in
// src (guarded < 256), the helper cost in idx2, and the spill slot in idx.
func matchReadCounter(w []microOp) (microOp, int) {
	if len(w) < 3 ||
		w[0].kind != muMovImm || w[0].dst != uint8(R1) ||
		w[1].kind != muMovImm || w[1].dst != uint8(R2) || w[1].imm > 0xff ||
		w[2].kind != muCallReadCounter {
		return microOp{}, 0
	}
	op := microOp{kind: muReadCounterLoad, imm: w[0].imm,
		src: uint8(w[1].imm), idx2: int32(w[2].imm)}
	if len(w) >= 4 && w[3].kind == muStoreRegExact && w[3].src == uint8(R0) {
		op.kind = muReadCounterStore
		op.idx = w[3].idx
		return op, 4
	}
	return op, 3
}

// matchGetArgStore recognizes mov r1, I; call get_tracepoint_arg;
// stx [fp-D], r0 — how every tracepoint argument lands in the frame.
func matchGetArgStore(w []microOp) (microOp, int) {
	if len(w) < 3 ||
		w[0].kind != muMovImm || w[0].dst != uint8(R1) ||
		w[1].kind != muCallGetArg ||
		w[2].kind != muStoreRegExact || w[2].src != uint8(R0) {
		return microOp{}, 0
	}
	return microOp{kind: muGetArgStore, imm: w[0].imm,
		idx2: int32(w[1].imm), idx: w[2].idx}, 3
}

// matchScaleStore recognizes the fixed-point multiplexing-normalization
// idiom codegen emits for every CPU counter (paper §4.1):
//
//	ldx rX, [fp-A]; lsh rX, S; ldx rY, [fp-B]; divr rX, rY
//	mulr rZ, rX; rsh rZ, S; stx [fp-D], rZ
//
// X, Y, Z must be pairwise distinct so the replay's write order is
// equivalent; A and B pack into imm with the shift.
func matchScaleStore(w []microOp) (microOp, int) {
	if len(w) < 7 {
		return microOp{}, 0
	}
	x, y, z := w[0].dst, w[2].dst, w[4].dst
	s := w[1].imm
	if w[0].kind != muLoadStackExact ||
		w[1].kind != muLshImm || w[1].dst != x || s >= 64 ||
		w[2].kind != muLoadStackExact || y == x ||
		w[3].kind != muDivReg || w[3].dst != x || w[3].src != y ||
		w[4].kind != muMulReg || w[4].src != x || z == x || z == y ||
		w[5].kind != muRshImm || w[5].dst != z || w[5].imm != s ||
		w[6].kind != muStoreRegExact || w[6].src != z {
		return microOp{}, 0
	}
	return microOp{kind: muScaleStore, dst: z, src: x, x: y, idx: w[6].idx,
		imm: uint64(uint32(w[0].idx))<<32 | uint64(uint32(w[2].idx))<<16 | s}, 7
}

// matchProbe recognizes a complete normalized counter probe — the
// first-pass outputs for
//
//	read(C, enabled) → [fp-A]; read(C, running) → [fp-B]; read(C, raw)
//	normalize → [fp-D]
//
// — and fuses all 18 instructions into one op that calls Perf().Read
// once (one Reading carries raw, enabled, and running; the three
// interpreter reads of the same counter see identical state, so one read
// is bit-equivalent). The counter id joins A, B, and the shift in imm;
// idx2 accumulates all three helper costs.
func matchProbe(w []microOp) (microOp, int) {
	if len(w) < 4 ||
		w[0].kind != muReadCounterStore || w[0].src != CounterPartEnabled ||
		w[1].kind != muReadCounterStore || w[1].src != CounterPartRunning ||
		w[1].imm != w[0].imm ||
		w[2].kind != muReadCounterLoad || w[2].src != CounterPartRaw ||
		w[2].imm != w[0].imm ||
		w[3].kind != muScaleStore {
		return microOp{}, 0
	}
	c, a, b := w[0].imm, w[0].idx, w[1].idx
	sa := int32(uint32(w[3].imm>>32) & 0xffff)
	sb := int32(uint32(w[3].imm>>16) & 0xffff)
	if sa != a || sb != b || a == b || c > 0xff ||
		uint32(a) > 0xffff || uint32(b) > 0xffff {
		return microOp{}, 0
	}
	return microOp{kind: muProbeScaleStore,
		dst: w[3].dst, src: w[3].src, x: w[3].x, idx: w[3].idx,
		idx2: w[0].idx2 + w[1].idx2 + w[2].idx2,
		imm:  c<<48 | uint64(uint32(a))<<32 | uint64(uint32(b))<<16 | w[3].imm&63}, 4
}

// matchDeltaObjStore recognizes the END-marker delta quad codegen emits
// for every accumulated metric (new snapshot minus BEGIN snapshot, stored
// back into the map entry):
//
//	ldx rA, [fp-X]; ldx rB, [rM+K]; subr rA, rB; stx [rM+K], rA
//
// A, B, M pairwise distinct so the replay's write order is equivalent.
func matchDeltaObjStore(w []microOp) (microOp, int) {
	if len(w) < 4 ||
		w[0].kind != muLoadStackExact ||
		w[1].kind != muLoadObjDyn ||
		w[2].kind != muSubReg ||
		w[3].kind != muStoreRegObj {
		return microOp{}, 0
	}
	a, b, base := w[0].dst, w[1].dst, w[1].src
	if a == b || a == base || b == base ||
		w[2].dst != a || w[2].src != b ||
		w[3].dst != base || w[3].src != a || w[3].idx != w[1].idx {
		return microOp{}, 0
	}
	return microOp{kind: muDeltaObjStore, dst: a, src: base, x: b,
		idx: w[1].idx, idx2: w[0].idx}, 4
}

// matchAddImmObjStore recognizes the in-place map-slot increment
// (error-slot and occurrence counters):
//
//	ldx rB, [rM+K]; add rB, I; stx [rM+K], rB
func matchAddImmObjStore(w []microOp) (microOp, int) {
	if len(w) < 3 ||
		w[0].kind != muLoadObjDyn ||
		w[1].kind != muAddImm || w[1].dst != w[0].dst ||
		w[2].kind != muStoreRegObj {
		return microOp{}, 0
	}
	b, base := w[0].dst, w[0].src
	if b == base || w[2].dst != base || w[2].src != b || w[2].idx != w[0].idx {
		return microOp{}, 0
	}
	return microOp{kind: muAddImmObjStore, src: base, x: b,
		idx: w[0].idx, imm: w[1].imm}, 3
}

// blockRunner executes a pre-decoded superblock. The switch compiles to a
// jump table; operand resolution happened at compile time, so each case is
// a handful of machine instructions with no tag decode, no bounds
// reasoning, and no per-instruction accounting. insns is the number of
// program instructions the block retires — with pattern super-ops this
// exceeds len(ops).
func blockRunner(ops []microOp, insns int, next *copFn) copFn {
	return func(ec *execState) copFn {
		for i := range ops {
			op := &ops[i]
			switch op.kind {
			case muMovImm:
				ec.regs[op.dst&regMask] = op.imm
			case muMovReg:
				ec.regs[op.dst&regMask] = ec.regs[op.src&regMask]

			case muAddImm:
				ec.regs[op.dst&regMask] += op.imm
			case muAddReg:
				ec.regs[op.dst&regMask] += ec.regs[op.src&regMask]
			case muSubImm:
				ec.regs[op.dst&regMask] -= op.imm
			case muSubReg:
				ec.regs[op.dst&regMask] -= ec.regs[op.src&regMask]
			case muMulImm:
				ec.regs[op.dst&regMask] *= op.imm
			case muMulReg:
				ec.regs[op.dst&regMask] *= ec.regs[op.src&regMask]
			case muDivImm:
				if op.imm == 0 {
					ec.regs[op.dst&regMask] = 0
				} else {
					ec.regs[op.dst&regMask] /= op.imm
				}
			case muDivReg:
				if b := ec.regs[op.src&regMask]; b == 0 {
					ec.regs[op.dst&regMask] = 0
				} else {
					ec.regs[op.dst&regMask] /= b
				}
			case muModImm:
				if op.imm == 0 {
					ec.regs[op.dst&regMask] = 0
				} else {
					ec.regs[op.dst&regMask] %= op.imm
				}
			case muModReg:
				if b := ec.regs[op.src&regMask]; b == 0 {
					ec.regs[op.dst&regMask] = 0
				} else {
					ec.regs[op.dst&regMask] %= b
				}
			case muAndImm:
				ec.regs[op.dst&regMask] &= op.imm
			case muAndReg:
				ec.regs[op.dst&regMask] &= ec.regs[op.src&regMask]
			case muOrImm:
				ec.regs[op.dst&regMask] |= op.imm
			case muOrReg:
				ec.regs[op.dst&regMask] |= ec.regs[op.src&regMask]
			case muXorImm:
				ec.regs[op.dst&regMask] ^= op.imm
			case muXorReg:
				ec.regs[op.dst&regMask] ^= ec.regs[op.src&regMask]
			case muLshImm:
				ec.regs[op.dst&regMask] <<= op.imm & 63
			case muLshReg:
				ec.regs[op.dst&regMask] <<= ec.regs[op.src&regMask] & 63
			case muRshImm:
				ec.regs[op.dst&regMask] >>= op.imm & 63
			case muRshReg:
				ec.regs[op.dst&regMask] >>= ec.regs[op.src&regMask] & 63
			case muArshImm:
				ec.regs[op.dst&regMask] = uint64(int64(ec.regs[op.dst&regMask]) >> (op.imm & 63))
			case muArshReg:
				ec.regs[op.dst&regMask] = uint64(int64(ec.regs[op.dst&regMask]) >> (ec.regs[op.src&regMask] & 63))
			case muNeg:
				ec.regs[op.dst&regMask] = -ec.regs[op.dst&regMask]

			case muPtrAddImm:
				d := ec.regs[op.dst&regMask]
				ec.regs[op.dst&regMask] = mkPtr(ptrObj(d), uint32(int64(ptrAddr(d))+int64(op.imm)))
			case muPtrAddReg:
				d := ec.regs[op.dst&regMask]
				ec.regs[op.dst&regMask] = mkPtr(ptrObj(d), uint32(int64(ptrAddr(d))+int64(ec.regs[op.src&regMask])))
			case muPtrSubReg:
				d := ec.regs[op.dst&regMask]
				ec.regs[op.dst&regMask] = mkPtr(ptrObj(d), uint32(int64(ptrAddr(d))-int64(ec.regs[op.src&regMask])))

			case muLoadStackExact:
				ec.regs[op.dst&regMask] = U64(ec.stack[op.idx : op.idx+8])
			case muLoadStackDyn:
				a := int32(ptrAddr(ec.regs[op.src&regMask])) + op.idx
				ec.regs[op.dst&regMask] = U64(ec.stack[a : a+8])
			case muLoadObjDyn:
				v := ec.regs[op.src&regMask]
				b := ec.objects[ptrObj(v)-1]
				a := int32(ptrAddr(v)) + op.idx
				ec.regs[op.dst&regMask] = U64(b[a : a+8])
			case muStoreImmExact:
				PutU64(ec.stack[op.idx:op.idx+8], op.imm)
			case muStoreImmDyn:
				a := int32(ptrAddr(ec.regs[op.dst&regMask])) + op.idx
				PutU64(ec.stack[a:a+8], op.imm)
			case muStoreImmObj:
				v := ec.regs[op.dst&regMask]
				b := ec.objects[ptrObj(v)-1]
				a := int32(ptrAddr(v)) + op.idx
				PutU64(b[a:a+8], op.imm)
			case muStoreRegExact:
				PutU64(ec.stack[op.idx:op.idx+8], ec.regs[op.src&regMask])
			case muStoreRegDyn:
				a := int32(ptrAddr(ec.regs[op.dst&regMask])) + op.idx
				PutU64(ec.stack[a:a+8], ec.regs[op.src&regMask])
			case muStoreRegObj:
				v := ec.regs[op.dst&regMask]
				b := ec.objects[ptrObj(v)-1]
				a := int32(ptrAddr(v)) + op.idx
				PutU64(b[a:a+8], ec.regs[op.src&regMask])

			case muCallGetPID:
				ec.regs[R0] = uint64(ec.task.PID)
				ec.helperNS += int64(op.imm)
			case muCallGetTaskGen:
				ec.regs[R0] = ec.task.Gen()
				ec.helperNS += int64(op.imm)
			case muCallGetCPU:
				ec.regs[R0] = uint64(ec.task.CPU())
				ec.helperNS += int64(op.imm)
			case muCallKtime:
				ec.regs[R0] = uint64(ec.task.Now())
				ec.helperNS += int64(op.imm)
			case muCallGetArg:
				if i := int(ec.regs[R1]); i >= 0 && i < len(ec.args) {
					ec.regs[R0] = ec.args[i]
				} else {
					ec.regs[R0] = 0
				}
				ec.helperNS += int64(op.imm)
			case muCallReadCounter:
				ec.regs[R0] = readCounterHelper(ec.task, ec.regs[R1], ec.regs[R2])
				ec.helperNS += int64(op.imm)
			case muCallReadIOAC:
				ec.regs[R0] = readIOACHelper(ec.task, ec.regs[R1])
				ec.helperNS += int64(op.imm)
			case muCallReadSock:
				ec.regs[R0] = readSockHelper(ec.task, ec.regs[R1])
				ec.helperNS += int64(op.imm)

			case muStoreZeroRun:
				clear(ec.stack[op.idx : op.idx+8*op.idx2])
			case muLoadObjStore:
				v := ec.regs[op.src&regMask]
				b := ec.objects[ptrObj(v)-1]
				a := int32(ptrAddr(v)) + op.idx2
				x := U64(b[a : a+8])
				ec.regs[op.x&regMask] = x
				PutU64(ec.stack[op.idx:op.idx+8], x)
			case muLoadStackStore:
				v := U64(ec.stack[op.idx2 : op.idx2+8])
				ec.regs[op.dst&regMask] = v
				PutU64(ec.stack[op.idx:op.idx+8], v)
			case muGetArgStore:
				ec.regs[R1] = op.imm
				var v uint64
				if i := int(op.imm); i >= 0 && i < len(ec.args) {
					v = ec.args[i]
				}
				ec.regs[R0] = v
				PutU64(ec.stack[op.idx:op.idx+8], v)
				ec.helperNS += int64(op.idx2)
			case muReadCounterLoad:
				ec.regs[R1] = op.imm
				ec.regs[R2] = uint64(op.src)
				ec.regs[R0] = readCounterHelper(ec.task, op.imm, uint64(op.src))
				ec.helperNS += int64(op.idx2)
			case muReadCounterStore:
				ec.regs[R1] = op.imm
				ec.regs[R2] = uint64(op.src)
				v := readCounterHelper(ec.task, op.imm, uint64(op.src))
				ec.regs[R0] = v
				PutU64(ec.stack[op.idx:op.idx+8], v)
				ec.helperNS += int64(op.idx2)
			case muScaleStore:
				a := int32(uint32(op.imm >> 32))
				bidx := int32(uint32(op.imm>>16) & 0xffff)
				s := op.imm & 63
				vx := U64(ec.stack[a:a+8]) << s
				vy := U64(ec.stack[bidx : bidx+8])
				if vy == 0 {
					vx = 0
				} else {
					vx /= vy
				}
				ec.regs[op.src&regMask] = vx
				ec.regs[op.x&regMask] = vy
				z := (ec.regs[op.dst&regMask] * vx) >> s
				ec.regs[op.dst&regMask] = z
				PutU64(ec.stack[op.idx:op.idx+8], z)

			case muDeltaObjStore:
				va := U64(ec.stack[op.idx2 : op.idx2+8])
				v := ec.regs[op.src&regMask]
				b := ec.objects[ptrObj(v)-1]
				a := int32(ptrAddr(v)) + op.idx
				vb := U64(b[a : a+8])
				ec.regs[op.x&regMask] = vb
				d := va - vb
				ec.regs[op.dst&regMask] = d
				PutU64(b[a:a+8], d)
			case muAddImmObjStore:
				v := ec.regs[op.src&regMask]
				b := ec.objects[ptrObj(v)-1]
				a := int32(ptrAddr(v)) + op.idx
				nv := U64(b[a:a+8]) + op.imm
				ec.regs[op.x&regMask] = nv
				PutU64(b[a:a+8], nv)
			case muProbeScaleStore:
				c := kernel.Counter(op.imm >> 48)
				a := int32(uint32(op.imm>>32) & 0xffff)
				bidx := int32(uint32(op.imm>>16) & 0xffff)
				s := op.imm & 63
				var raw, en, run uint64
				if c.Valid() {
					r := ec.task.Perf().Read(c)
					raw = uint64(int64(r.Raw))
					en = uint64(r.TimeEnabled * perfScale)
					run = uint64(r.TimeRunning * perfScale)
				}
				ec.regs[R1] = uint64(c)
				ec.regs[R2] = CounterPartRaw
				ec.regs[R0] = raw
				PutU64(ec.stack[a:a+8], en)
				PutU64(ec.stack[bidx:bidx+8], run)
				vx := en << s
				if run == 0 {
					vx = 0
				} else {
					vx /= run
				}
				ec.regs[op.src&regMask] = vx
				ec.regs[op.x&regMask] = run
				z := (ec.regs[op.dst&regMask] * vx) >> s
				ec.regs[op.dst&regMask] = z
				PutU64(ec.stack[op.idx:op.idx+8], z)
				ec.helperNS += int64(op.idx2)

			case muHelperCall:
				op.fn(ec)
			}
		}
		ec.executed += insns
		return *next
	}
}

// readCounterHelper is the shared core of HelperReadCounter across the
// direct-call closure and the fused micro-ops: exact interpreter
// semantics, including the invalid-selector and unknown-part zeros.
func readCounterHelper(task *kernel.Task, sel, part uint64) uint64 {
	c := kernel.Counter(sel)
	if !c.Valid() {
		return 0
	}
	r := task.Perf().Read(c)
	switch part {
	case CounterPartRaw:
		return uint64(int64(r.Raw))
	case CounterPartEnabled:
		return uint64(r.TimeEnabled * perfScale)
	case CounterPartRunning:
		return uint64(r.TimeRunning * perfScale)
	default:
		return 0
	}
}

func readIOACHelper(task *kernel.Task, field uint64) uint64 {
	switch field {
	case IOACReadBytes:
		return uint64(task.IOAC.ReadBytes)
	case IOACWriteBytes:
		return uint64(task.IOAC.WriteBytes)
	case IOACReadOps:
		return uint64(task.IOAC.ReadOps)
	case IOACWriteOps:
		return uint64(task.IOAC.WriteOps)
	default:
		return 0
	}
}

func readSockHelper(task *kernel.Task, field uint64) uint64 {
	switch field {
	case SockBytesReceived:
		return uint64(task.Sock.BytesReceived)
	case SockBytesSent:
		return uint64(task.Sock.BytesSent)
	case SockSegsIn:
		return uint64(task.Sock.SegsIn)
	case SockSegsOut:
		return uint64(task.Sock.SegsOut)
	default:
		return 0
	}
}
