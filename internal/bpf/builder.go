package bpf

import (
	"errors"
	"fmt"
)

// Builder assembles programs with symbolic labels, so TScout's Codegen can
// emit Collector code without computing jump displacements by hand. All
// emit methods return the builder for chaining; errors (duplicate or
// unresolved labels) are accumulated and reported by Build.
type Builder struct {
	name   string
	insns  []Insn
	maps   []Map
	labels map[string]int
	fixups []fixup
	errs   []error
}

type fixup struct {
	insn  int
	label string
}

// NewBuilder creates an empty program builder.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// AddMap registers a map with the program and returns its index for
// LoadMapPtr.
func (b *Builder) AddMap(m Map) int {
	b.maps = append(b.maps, m)
	return len(b.maps) - 1
}

// Label defines a jump target at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.insns)
	return b
}

func (b *Builder) emit(in Insn) *Builder {
	b.insns = append(b.insns, in)
	return b
}

func (b *Builder) emitJump(in Insn, label string) *Builder {
	b.fixups = append(b.fixups, fixup{insn: len(b.insns), label: label})
	return b.emit(in)
}

// Mov sets dst to an immediate.
func (b *Builder) Mov(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpMovImm, Dst: dst, Imm: imm})
}

// MovReg copies src into dst.
func (b *Builder) MovReg(dst, src Reg) *Builder {
	return b.emit(Insn{Op: OpMovReg, Dst: dst, Src: src})
}

// Add adds an immediate to dst.
func (b *Builder) Add(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpAddImm, Dst: dst, Imm: imm})
}

// AddReg adds src to dst.
func (b *Builder) AddReg(dst, src Reg) *Builder {
	return b.emit(Insn{Op: OpAddReg, Dst: dst, Src: src})
}

// Sub subtracts an immediate from dst.
func (b *Builder) Sub(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpSubImm, Dst: dst, Imm: imm})
}

// SubReg subtracts src from dst.
func (b *Builder) SubReg(dst, src Reg) *Builder {
	return b.emit(Insn{Op: OpSubReg, Dst: dst, Src: src})
}

// Mul multiplies dst by an immediate.
func (b *Builder) Mul(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpMulImm, Dst: dst, Imm: imm})
}

// MulReg multiplies dst by src.
func (b *Builder) MulReg(dst, src Reg) *Builder {
	return b.emit(Insn{Op: OpMulReg, Dst: dst, Src: src})
}

// Div divides dst (unsigned) by an immediate.
func (b *Builder) Div(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpDivImm, Dst: dst, Imm: imm})
}

// DivReg divides dst (unsigned) by src; division by zero yields zero.
func (b *Builder) DivReg(dst, src Reg) *Builder {
	return b.emit(Insn{Op: OpDivReg, Dst: dst, Src: src})
}

// Mod takes dst modulo an immediate.
func (b *Builder) Mod(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpModImm, Dst: dst, Imm: imm})
}

// And masks dst with an immediate.
func (b *Builder) And(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpAndImm, Dst: dst, Imm: imm})
}

// Or sets bits of an immediate in dst.
func (b *Builder) Or(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpOrImm, Dst: dst, Imm: imm})
}

// Xor xors dst with an immediate.
func (b *Builder) Xor(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpXorImm, Dst: dst, Imm: imm})
}

// Lsh shifts dst left by an immediate.
func (b *Builder) Lsh(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpLshImm, Dst: dst, Imm: imm})
}

// Rsh shifts dst right (logical) by an immediate.
func (b *Builder) Rsh(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpRshImm, Dst: dst, Imm: imm})
}

// Arsh shifts dst right (arithmetic, sign-propagating) by an immediate.
func (b *Builder) Arsh(dst Reg, imm int64) *Builder {
	return b.emit(Insn{Op: OpArshImm, Dst: dst, Imm: imm})
}

// ArshReg shifts dst right (arithmetic) by src.
func (b *Builder) ArshReg(dst, src Reg) *Builder {
	return b.emit(Insn{Op: OpArshReg, Dst: dst, Src: src})
}

// Load loads *(u64*)(src+off) into dst.
func (b *Builder) Load(dst, src Reg, off int32) *Builder {
	return b.emit(Insn{Op: OpLoad, Dst: dst, Src: src, Off: off})
}

// Store writes src to *(u64*)(dst+off).
func (b *Builder) Store(dst Reg, off int32, src Reg) *Builder {
	return b.emit(Insn{Op: OpStore, Dst: dst, Src: src, Off: off})
}

// StoreImm writes an immediate to *(u64*)(dst+off).
func (b *Builder) StoreImm(dst Reg, off int32, imm int64) *Builder {
	return b.emit(Insn{Op: OpStoreImm, Dst: dst, Imm: imm, Off: off})
}

// LoadMapPtr materializes map handle mapIdx into dst.
func (b *Builder) LoadMapPtr(dst Reg, mapIdx int) *Builder {
	return b.emit(Insn{Op: OpLoadMapPtr, Dst: dst, Imm: int64(mapIdx)})
}

// Ja jumps unconditionally to label.
func (b *Builder) Ja(label string) *Builder {
	return b.emitJump(Insn{Op: OpJa}, label)
}

// JaLoop jumps unconditionally backward to label with a declared loop
// bound (required by the verifier for back-edges).
func (b *Builder) JaLoop(label string, bound int32) *Builder {
	return b.emitJump(Insn{Op: OpJa, LoopBound: bound}, label)
}

// Jeq jumps to label if dst == imm.
func (b *Builder) Jeq(dst Reg, imm int64, label string) *Builder {
	return b.emitJump(Insn{Op: OpJeqImm, Dst: dst, Imm: imm}, label)
}

// Jne jumps to label if dst != imm.
func (b *Builder) Jne(dst Reg, imm int64, label string) *Builder {
	return b.emitJump(Insn{Op: OpJneImm, Dst: dst, Imm: imm}, label)
}

// Jgt jumps to label if dst > imm (unsigned).
func (b *Builder) Jgt(dst Reg, imm int64, label string) *Builder {
	return b.emitJump(Insn{Op: OpJgtImm, Dst: dst, Imm: imm}, label)
}

// Jge jumps to label if dst >= imm (unsigned).
func (b *Builder) Jge(dst Reg, imm int64, label string) *Builder {
	return b.emitJump(Insn{Op: OpJgeImm, Dst: dst, Imm: imm}, label)
}

// Jlt jumps to label if dst < imm (unsigned).
func (b *Builder) Jlt(dst Reg, imm int64, label string) *Builder {
	return b.emitJump(Insn{Op: OpJltImm, Dst: dst, Imm: imm}, label)
}

// Jle jumps to label if dst <= imm (unsigned).
func (b *Builder) Jle(dst Reg, imm int64, label string) *Builder {
	return b.emitJump(Insn{Op: OpJleImm, Dst: dst, Imm: imm}, label)
}

// JeqReg jumps to label if dst == src.
func (b *Builder) JeqReg(dst, src Reg, label string) *Builder {
	return b.emitJump(Insn{Op: OpJeqReg, Dst: dst, Src: src}, label)
}

// JneReg jumps to label if dst != src.
func (b *Builder) JneReg(dst, src Reg, label string) *Builder {
	return b.emitJump(Insn{Op: OpJneReg, Dst: dst, Src: src}, label)
}

// JltRegLoop jumps backward to label while dst < src, declaring bound
// loop iterations (the compile-time bound BPF's verifier demands).
func (b *Builder) JltRegLoop(dst, src Reg, label string, bound int32) *Builder {
	return b.emitJump(Insn{Op: OpJltReg, Dst: dst, Src: src, LoopBound: bound}, label)
}

// JneLoop jumps backward to label while dst != imm, with a declared bound.
func (b *Builder) JneLoop(dst Reg, imm int64, label string, bound int32) *Builder {
	return b.emitJump(Insn{Op: OpJneImm, Dst: dst, Imm: imm, LoopBound: bound}, label)
}

// Call invokes a helper by ID.
func (b *Builder) Call(helper int64) *Builder {
	return b.emit(Insn{Op: OpCall, Imm: helper})
}

// Exit returns R0 to the kernel.
func (b *Builder) Exit() *Builder {
	return b.emit(Insn{Op: OpExit})
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insns) }

// Build resolves labels and returns the assembled (unverified) program.
func (b *Builder) Build() (*Program, error) {
	errs := append([]error(nil), b.errs...)
	insns := append([]Insn(nil), b.insns...)
	for _, f := range b.fixups {
		tgt, ok := b.labels[f.label]
		if !ok {
			errs = append(errs, fmt.Errorf("undefined label %q", f.label))
			continue
		}
		insns[f.insn].Off = int32(tgt - f.insn - 1)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("bpf: assembly of %q failed: %w", b.name, errors.Join(errs...))
	}
	return &Program{Name: b.name, Insns: insns, Maps: append([]Map(nil), b.maps...)}, nil
}

// MustBuild is Build for statically-known-good programs in tests and
// examples; it panics on assembly errors.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
