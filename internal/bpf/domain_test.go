package bpf

import (
	"math"
	"testing"
)

// Brute-force soundness checks for the abstract domain: every transfer
// function, join, widen, and refine is validated by enumerating the
// concretization of small abstract values (all intervals and tnums over a
// few low bits, plus 64-bit edge cases) and checking gamma-containment
// against the concrete evalALU semantics.

const enumMax = 15 // exhaustive abstract values live in [0, enumMax]

// enumTnums yields every tnum with Val|Mask <= enumMax (plus unknown).
func enumTnums() []Tnum {
	var out []Tnum
	for mask := uint64(0); mask <= enumMax; mask++ {
		for val := uint64(0); val <= enumMax; val++ {
			if val&mask == 0 {
				out = append(out, Tnum{Val: val, Mask: mask})
			}
		}
	}
	return append(out, tnUnknown())
}

// enumVRegs yields a diverse set of abstract registers: every interval
// over [0, enumMax], every small tnum paired with its natural interval,
// and a handful of 64-bit edge cases around the signed boundary.
func enumVRegs() []VReg {
	var out []VReg
	for lo := uint64(0); lo <= enumMax; lo++ {
		for hi := lo; hi <= enumMax; hi++ {
			out = append(out, vrRange(lo, hi))
		}
	}
	for mask := uint64(0); mask <= enumMax; mask++ {
		for val := uint64(0); val <= enumMax; val++ {
			if val&mask != 0 {
				continue
			}
			tn := Tnum{Val: val, Mask: mask}
			out = append(out, VReg{Lo: tn.Val, Hi: tn.Val | tn.Mask, TN: tn}.reduce())
		}
	}
	out = append(out,
		vrTop(),
		vrConst(^uint64(0)),
		vrConst(1<<63),
		vrConst(math.MaxInt64),
		vrRange(1<<63-2, 1<<63+2),
		vrRange(^uint64(3), ^uint64(0)),
	)
	return out
}

// gamma enumerates the concrete values of v, or returns ok=false when the
// concretization is too large to enumerate (64-bit edge cases).
func gamma(v VReg) ([]uint64, bool) {
	if v.Hi-v.Lo > 64 {
		return nil, false
	}
	var out []uint64
	for x := v.Lo; ; x++ {
		if v.Contains(x) {
			out = append(out, x)
		}
		if x == v.Hi {
			break
		}
	}
	return out, true
}

func TestTnumContainsBasics(t *testing.T) {
	if !tnConst(5).Contains(5) || tnConst(5).Contains(4) {
		t.Fatal("tnConst containment wrong")
	}
	for v := uint64(0); v < 100; v++ {
		if !tnUnknown().Contains(v) {
			t.Fatalf("tnUnknown must contain %d", v)
		}
	}
	for _, tn := range enumTnums() {
		if tn.Val&tn.Mask != 0 {
			t.Fatalf("tnum invariant violated: %+v", tn)
		}
	}
}

func TestTnumJoinSound(t *testing.T) {
	tns := enumTnums()
	for _, a := range tns {
		for _, b := range tns {
			j := tnJoin(a, b)
			for v := uint64(0); v <= 2*enumMax+1; v++ {
				if (a.Contains(v) || b.Contains(v)) && !j.Contains(v) {
					t.Fatalf("tnJoin(%+v, %+v) lost %d", a, b, v)
				}
			}
		}
	}
}

func TestTnumIntersectExact(t *testing.T) {
	tns := enumTnums()
	for _, a := range tns {
		for _, b := range tns {
			m, ok := tnIntersect(a, b)
			for v := uint64(0); v <= 2*enumMax+1; v++ {
				both := a.Contains(v) && b.Contains(v)
				if both && !ok {
					t.Fatalf("tnIntersect(%+v, %+v) reported empty but contains %d", a, b, v)
				}
				if ok && both != m.Contains(v) {
					t.Fatalf("tnIntersect(%+v, %+v) = %+v: containment of %d is %v, want %v",
						a, b, m, v, m.Contains(v), both)
				}
			}
		}
	}
}

func TestTnumFromRangeSound(t *testing.T) {
	for lo := uint64(0); lo <= 2*enumMax; lo++ {
		for hi := lo; hi <= 2*enumMax; hi++ {
			tn := tnFromRange(lo, hi)
			for v := lo; v <= hi; v++ {
				if !tn.Contains(v) {
					t.Fatalf("tnFromRange(%d, %d) = %+v lost %d", lo, hi, tn, v)
				}
			}
		}
	}
}

func TestVRegReducePreservesMembers(t *testing.T) {
	for _, v := range enumVRegs() {
		g, ok := gamma(v)
		if !ok {
			continue
		}
		r := v.reduce()
		for _, x := range g {
			if !r.Contains(x) {
				t.Fatalf("reduce(%+v) = %+v lost member %d", v, r, x)
			}
		}
	}
}

func TestVRegJoinAndWidenSound(t *testing.T) {
	vrs := enumVRegs()
	for _, a := range vrs {
		ga, okA := gamma(a)
		if !okA {
			continue
		}
		for _, b := range vrs {
			gb, okB := gamma(b)
			if !okB {
				continue
			}
			j := vrJoin(a, b)
			w := vrWiden(a, b)
			for _, x := range append(append([]uint64(nil), ga...), gb...) {
				if !j.Contains(x) {
					t.Fatalf("vrJoin(%+v, %+v) lost %d", a, b, x)
				}
				if !w.Contains(x) {
					t.Fatalf("vrWiden(%+v, %+v) lost %d", a, b, x)
				}
			}
		}
	}
}

// transferOps lists one representative opcode per vrTransfer case (the
// imm/reg pairs share their case bodies).
var transferOps = []Op{
	OpMovReg, OpNeg, OpAddImm, OpSubImm, OpMulImm, OpDivImm, OpModImm,
	OpAndImm, OpOrImm, OpXorImm, OpLshImm, OpRshImm, OpArshImm,
}

func TestVRegTransferSound(t *testing.T) {
	vrs := enumVRegs()
	type pair struct {
		v VReg
		g []uint64
	}
	var pairs []pair
	for _, v := range vrs {
		if g, ok := gamma(v); ok {
			pairs = append(pairs, pair{v, g})
		}
	}
	for _, op := range transferOps {
		for _, pa := range pairs {
			for _, pb := range pairs {
				out := vrTransfer(op, pa.v, pb.v)
				if out.Lo > out.Hi {
					t.Fatalf("%v: transfer produced empty interval %+v", op, out)
				}
				if out.TN.Val&out.TN.Mask != 0 {
					t.Fatalf("%v: transfer broke tnum invariant %+v", op, out.TN)
				}
				for _, a := range pa.g {
					for _, b := range pb.g {
						c := uint64(evalALU(op, int64(a), int64(b)))
						if !out.Contains(c) {
							t.Fatalf("%v: transfer(%+v, %+v) = %+v does not contain evalALU(%d, %d) = %d",
								op, pa.v, pb.v, out, a, b, c)
						}
					}
				}
			}
		}
	}
}

// Transfers on unenumerable 64-bit edge values: spot-check specific
// concrete members rather than the full concretization.
func TestVRegTransferEdgeCases(t *testing.T) {
	edge := []uint64{0, 1, 63, 64, math.MaxInt64, 1 << 63, ^uint64(0), ^uint64(1)}
	big := []VReg{vrTop(), vrRange(1<<63-2, 1<<63+2), vrRange(^uint64(3), ^uint64(0))}
	for _, op := range transferOps {
		for _, a := range big {
			for _, bv := range edge {
				out := vrTransfer(op, a, vrConst(bv))
				for _, av := range edge {
					if !a.Contains(av) {
						continue
					}
					c := uint64(evalALU(op, int64(av), int64(bv)))
					if !out.Contains(c) {
						t.Fatalf("%v: transfer(%+v, const %d) = %+v does not contain evalALU(%d, %d) = %d",
							op, a, bv, out, av, bv, c)
					}
				}
			}
		}
	}
}

func relHolds(rel vrRel, a, b uint64) bool {
	switch rel {
	case relEQ:
		return a == b
	case relNE:
		return a != b
	case relLT:
		return a < b
	case relLE:
		return a <= b
	case relGT:
		return a > b
	case relGE:
		return a >= b
	case relSET:
		return a&b != 0
	case relNSET:
		return a&b == 0
	}
	return false
}

var allRels = []vrRel{relEQ, relNE, relLT, relLE, relGT, relGE, relSET, relNSET}

func TestVRegRefineSound(t *testing.T) {
	vrs := enumVRegs()
	type pair struct {
		v VReg
		g []uint64
	}
	var pairs []pair
	for _, v := range vrs {
		if g, ok := gamma(v); ok {
			pairs = append(pairs, pair{v, g})
		}
	}
	for _, rel := range allRels {
		for _, pa := range pairs {
			for _, pb := range pairs {
				ra, rb, feasible := vrRefine(rel, pa.v, pb.v)
				anyPair := false
				for _, a := range pa.g {
					for _, b := range pb.g {
						if !relHolds(rel, a, b) {
							continue
						}
						anyPair = true
						if !ra.Contains(a) {
							t.Fatalf("rel %d: refine(%+v, %+v) = %+v lost left witness %d (with %d)",
								rel, pa.v, pb.v, ra, a, b)
						}
						if !rb.Contains(b) {
							t.Fatalf("rel %d: refine(%+v, %+v) = %+v lost right witness %d (with %d)",
								rel, pa.v, pb.v, rb, b, a)
						}
					}
				}
				if anyPair && !feasible {
					t.Fatalf("rel %d: refine(%+v, %+v) claimed infeasible but witnesses exist",
						rel, pa.v, pb.v)
				}
			}
		}
	}
}

func TestNegRelMatchesComplement(t *testing.T) {
	for _, rel := range allRels {
		neg := negRel(rel)
		for a := uint64(0); a <= enumMax; a++ {
			for b := uint64(0); b <= enumMax; b++ {
				if relHolds(rel, a, b) == relHolds(neg, a, b) {
					t.Fatalf("negRel(%d) = %d is not the complement at (%d, %d)", rel, neg, a, b)
				}
			}
		}
	}
}

func TestRelNoneDegradesSoundly(t *testing.T) {
	// An unmodeled jump opcode must disable refinement entirely rather
	// than borrow another relation's semantics and prune feasible edges.
	if rel := relFor(OpExit); rel != relNone {
		t.Fatalf("relFor on a non-jump op = %d, want relNone", rel)
	}
	if neg := negRel(relNone); neg != relNone {
		t.Fatalf("negRel(relNone) = %d, want relNone", neg)
	}
	a, b := vrRange(3, 9), vrConst(5)
	ra, rb, feasible := vrRefine(relNone, a, b)
	if !feasible || ra != a || rb != b {
		t.Fatalf("vrRefine(relNone) must refine nothing and stay feasible, got %+v %+v %v", ra, rb, feasible)
	}
}

func TestVRegConstAccessors(t *testing.T) {
	c := vrConst(42)
	if !c.IsConst() || c.Const() != 42 {
		t.Fatalf("vrConst(42) = %+v", c)
	}
	r := vrRange(1, 5)
	if r.IsConst() {
		t.Fatalf("vrRange(1,5) reported const: %+v", r)
	}
	if vrRange(7, 3).Lo != 3 {
		t.Fatal("vrRange must normalize swapped bounds")
	}
}
