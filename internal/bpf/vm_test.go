package bpf

import (
	"errors"
	"testing"

	"tscout/internal/kernel"
	"tscout/internal/sim"
)

func testTask() *kernel.Task {
	k := kernel.New(sim.LargeHW, 1, 0)
	return k.NewTask("vm-test")
}

func runProg(t *testing.T, p *Program, args ...uint64) (uint64, int64) {
	t.Helper()
	lp, err := Load(p, 0)
	if err != nil {
		t.Fatalf("load:\n%s\n%v", p.Disassemble(), err)
	}
	ret, cost, rerr := lp.Run(testTask(), args)
	if rerr != nil {
		t.Fatalf("run: %v", rerr)
	}
	return ret, cost
}

func TestRunArithmetic(t *testing.T) {
	p := NewBuilder("arith").
		Mov(R0, 10).
		Add(R0, 5).
		Mul(R0, 4).
		Sub(R0, 20).
		Div(R0, 8). // (10+5)*4-20 = 40; /8 = 5
		Exit().MustBuild()
	ret, cost := runProg(t, p)
	if ret != 5 {
		t.Fatalf("arith: got %d want 5", ret)
	}
	if cost <= 0 {
		t.Fatalf("execution must cost virtual time")
	}
}

func TestRunBitOps(t *testing.T) {
	p := NewBuilder("bits").
		Mov(R0, 0xF0).
		And(R0, 0x3C).
		Or(R0, 0x01).
		Xor(R0, 0x10).
		Lsh(R0, 2).
		Rsh(R0, 1).
		Exit().MustBuild()
	ret, _ := runProg(t, p)
	want := uint64((((0xF0&0x3C)|0x01)^0x10)<<2) >> 1
	if ret != want {
		t.Fatalf("bits: got %#x want %#x", ret, want)
	}
}

func TestRunNegAndMod(t *testing.T) {
	p := NewBuilder("negmod").
		Mov(R6, 17).
		Mod(R6, 5).
		MovReg(R0, R6).
		Exit().MustBuild()
	ret, _ := runProg(t, p)
	if ret != 2 {
		t.Fatalf("mod: got %d want 2", ret)
	}
}

func TestRunBoundedLoop(t *testing.T) {
	// Sum 1..100 with a verifier-approved bounded loop.
	p := NewBuilder("sum").
		Mov(R6, 0). // i
		Mov(R7, 0). // sum
		Label("top").
		Add(R6, 1).
		AddReg(R7, R6).
		JneLoop(R6, 100, "top", 100).
		MovReg(R0, R7).
		Exit().MustBuild()
	ret, cost := runProg(t, p)
	if ret != 5050 {
		t.Fatalf("loop sum: got %d want 5050", ret)
	}
	// 100 iterations x 3 insns each should dominate the cost.
	if cost < int64(250*sim.LargeHW.BPFInsnNS) {
		t.Fatalf("loop cost too low: %d", cost)
	}
}

func TestRunStackMemory(t *testing.T) {
	p := NewBuilder("stack").
		StoreImm(R10, -8, 41).
		Load(R0, R10, -8).
		Add(R0, 1).
		Exit().MustBuild()
	ret, _ := runProg(t, p)
	if ret != 42 {
		t.Fatalf("stack rw: got %d", ret)
	}
}

func TestRunMapRoundTrip(t *testing.T) {
	m := NewHashMap("m", 8, 8, 8)
	b := NewBuilder("map")
	idx := b.AddMap(m)
	p := b.
		StoreImm(R10, -16, 7).  // key = 7
		StoreImm(R10, -8, 123). // value = 123
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 16).
		MovReg(R3, R10).Sub(R3, 8).
		Call(HelperMapUpdate).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 16).
		Call(HelperMapLookup).
		Jeq(R0, 0, "miss").
		Load(R0, R0, 0).
		Exit().
		Label("miss").
		Mov(R0, 0).
		Exit().MustBuild()
	ret, _ := runProg(t, p)
	if ret != 123 {
		t.Fatalf("map round trip: got %d want 123", ret)
	}
	if got := m.Lookup(U64Key(7)); got == nil || U64(got) != 123 {
		t.Fatalf("map state after program: %v", got)
	}
}

func TestRunMapValueInPlaceMutation(t *testing.T) {
	// The Collector's accumulate pattern: lookup, add, store through the
	// value pointer.
	m := NewHashMap("m", 8, 8, 8)
	seed := make([]byte, 8)
	PutU64(seed, 100)
	if err := m.Update(U64Key(1), seed); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("accum")
	idx := b.AddMap(m)
	p := b.
		StoreImm(R10, -8, 1).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperMapLookup).
		Jeq(R0, 0, "miss").
		Load(R6, R0, 0).
		Add(R6, 11).
		Store(R0, 0, R6).
		Mov(R0, 0).
		Exit().
		Label("miss").
		Mov(R0, 1).
		Exit().MustBuild()
	ret, _ := runProg(t, p)
	if ret != 0 {
		t.Fatalf("lookup must hit")
	}
	if got := U64(m.Lookup(U64Key(1))); got != 111 {
		t.Fatalf("in-place mutation: got %d want 111", got)
	}
}

func TestRunMapLookupMiss(t *testing.T) {
	m := NewHashMap("m", 8, 8, 8)
	b := NewBuilder("miss")
	idx := b.AddMap(m)
	p := b.
		StoreImm(R10, -8, 99).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperMapLookup).
		Jne(R0, 0, "hit").
		Mov(R0, 55). // miss path
		Exit().
		Label("hit").
		Mov(R0, 1).
		Exit().MustBuild()
	ret, _ := runProg(t, p)
	if ret != 55 {
		t.Fatalf("miss path: got %d", ret)
	}
}

func TestRunStackMapPushPop(t *testing.T) {
	s := NewStackMap("s", 8, 4)
	b := NewBuilder("stackmap")
	idx := b.AddMap(s)
	p := b.
		StoreImm(R10, -8, 31).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperStackPush).
		StoreImm(R10, -8, 0). // clear buffer
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperStackPop).
		Jne(R0, 0, "empty").
		Load(R0, R10, -8).
		Exit().
		Label("empty").
		Mov(R0, 0).
		Exit().MustBuild()
	ret, _ := runProg(t, p)
	if ret != 31 {
		t.Fatalf("stack map round trip: got %d want 31", ret)
	}
	if s.Len() != 0 {
		t.Fatalf("stack must be empty after pop")
	}
}

func TestRunPerfOutput(t *testing.T) {
	rb := NewPerfRingBuffer("rb", 4)
	b := NewBuilder("perf")
	idx := b.AddMap(rb)
	p := b.
		StoreImm(R10, -16, 0xAA).
		StoreImm(R10, -8, 0xBB).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 16).
		Mov(R3, 16).
		Call(HelperPerfOutput).
		Mov(R0, 0).
		Exit().MustBuild()
	runProg(t, p)
	got := rb.Drain(0)
	if len(got) != 1 || len(got[0]) != 16 {
		t.Fatalf("perf submit: %v", got)
	}
	if U64(got[0][:8]) != 0xAA || U64(got[0][8:]) != 0xBB {
		t.Fatalf("perf payload: %x", got[0])
	}
}

func TestRunKernelStateHelpers(t *testing.T) {
	k := kernel.New(sim.LargeHW, 1, 0)
	task := k.NewTask("w")
	task.Charge(sim.Work{DiskWriteBytes: 4096, DiskOps: 1, NetRecvBytes: 256, NetMessages: 2})

	build := func(helper int64, field int64) *Program {
		return NewBuilder("read").
			Mov(R1, field).
			Call(helper).
			Exit().MustBuild()
	}
	check := func(helper int64, field int64, want uint64) {
		lp, err := Load(build(helper, field), 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, _, rerr := lp.Run(task, nil)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if ret != want {
			t.Fatalf("helper %d field %d: got %d want %d", helper, field, ret, want)
		}
	}
	check(HelperReadIOAC, IOACWriteBytes, 4096)
	check(HelperReadIOAC, IOACWriteOps, 1)
	check(HelperReadIOAC, IOACReadBytes, 0)
	check(HelperReadSock, SockBytesReceived, 256)
	check(HelperReadSock, SockSegsIn, 2)

	// PID helper.
	pidProg := NewBuilder("pid").Call(HelperGetPID).Exit().MustBuild()
	lp, _ := Load(pidProg, 0)
	ret, _, _ := lp.Run(task, nil)
	if int(ret) != task.PID {
		t.Fatalf("pid: got %d want %d", ret, task.PID)
	}
}

func TestRunPerfCounterHelper(t *testing.T) {
	k := kernel.New(sim.LargeHW, 2, 0)
	task := k.NewTask("w")
	task.Perf().Enable(kernel.CounterInstructions)
	task.Charge(sim.Work{Instructions: 5000, BytesTouched: 640})

	p := NewBuilder("ctr").
		Mov(R1, int64(kernel.CounterInstructions)).
		Mov(R2, CounterPartRaw).
		Call(HelperReadCounter).
		Exit().MustBuild()
	lp, err := Load(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	ret, _, _ := lp.Run(task, nil)
	if ret != 5000 {
		t.Fatalf("counter read: got %d want 5000", ret)
	}
}

func TestRunTracepointArgs(t *testing.T) {
	p := NewBuilder("args").
		Mov(R1, 1).
		Call(HelperGetArg).
		Exit().MustBuild()
	ret, _ := runProg(t, p, 10, 20, 30)
	if ret != 20 {
		t.Fatalf("arg read: got %d want 20", ret)
	}
	// Out-of-range index yields 0.
	ret2, _ := runProg(t, p, uint64(5))
	if ret2 != 0 {
		t.Fatalf("OOB arg: got %d want 0", ret2)
	}
}

func TestRunPrintk(t *testing.T) {
	p := NewBuilder("printk").
		Mov(R1, 777).
		Call(HelperTracePrintk).
		Exit().MustBuild()
	lp, err := Load(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lp.Run(testTask(), nil); err != nil {
		t.Fatal(err)
	}
	if log := lp.Printk(); len(log) != 1 || log[0] != 777 {
		t.Fatalf("printk log: %v", log)
	}
}

func TestRunKtimeMatchesTask(t *testing.T) {
	k := kernel.New(sim.LargeHW, 1, 0)
	task := k.NewTask("w")
	task.Clock.Advance(12345)
	p := NewBuilder("ktime").Call(HelperKtime).Exit().MustBuild()
	lp, _ := Load(p, 0)
	ret, _, _ := lp.Run(task, nil)
	if ret != 12345 {
		t.Fatalf("ktime: got %d", ret)
	}
}

func TestRunDivByZeroRegYieldsZero(t *testing.T) {
	// BPF semantics: runtime division by an unknown zero yields 0.
	p := NewBuilder("divz").
		Mov(R1, 0).
		Call(HelperGetArg). // r0 = args[0]
		Mov(R6, 100).
		DivReg(R6, R0).
		MovReg(R0, R6).
		Exit().MustBuild()
	ret, _ := runProg(t, p, 0)
	if ret != 0 {
		t.Fatalf("div by zero: got %d want 0", ret)
	}
}

func TestAttachToTracepoint(t *testing.T) {
	k := kernel.New(sim.LargeHW, 1, 0)
	task := k.NewTask("w")
	tp := k.Tracepoint("ou/seqscan/begin")

	rb := NewPerfRingBuffer("rb", 8)
	b := NewBuilder("collector")
	idx := b.AddMap(rb)
	p := b.
		Mov(R1, 0).
		Call(HelperGetArg). // arg 0 = feature value
		Store(R10, -8, R0).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Mov(R3, 8).
		Call(HelperPerfOutput).
		Mov(R0, 0).
		Exit().MustBuild()
	lp, err := Load(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	lp.Attach(tp)

	before := task.Now()
	task.HitTracepoint(tp, []uint64{4242})
	if task.Now() <= before {
		t.Fatalf("attached program must cost time")
	}
	got := rb.Drain(0)
	if len(got) != 1 || U64(got[0]) != 4242 {
		t.Fatalf("sample: %v", got)
	}
	if lp.Runs() != 1 {
		t.Fatalf("run count: %d", lp.Runs())
	}
}

func TestRuntimeInsnBudget(t *testing.T) {
	// A verified loop whose declared bound lies: runtime budget stops it.
	p := &Program{Name: "liar", Insns: []Insn{
		{Op: OpMovImm, Dst: R0, Imm: 0},
		// Always-taken backward branch with a lying declared bound; the
		// exit stays statically reachable via the never-taken fallthrough.
		{Op: OpJeqImm, Dst: R0, Imm: 0, Off: -2, LoopBound: 1},
		{Op: OpExit},
	}}
	lp, err := Load(p, 0)
	if err != nil {
		t.Fatalf("structurally valid: %v", err)
	}
	_, _, rerr := lp.Run(testTask(), nil)
	if !errors.Is(rerr, ErrInsnBudget) {
		t.Fatalf("runtime budget must trip: %v", rerr)
	}
}

func TestLoadRejectsUnverifiable(t *testing.T) {
	p := &Program{Name: "bad", Insns: []Insn{{Op: OpExit}}}
	if _, err := Load(p, 0); !errors.Is(err, ErrVerification) {
		t.Fatalf("Load must verify: %v", err)
	}
}

func TestCostScalesWithInstructionCount(t *testing.T) {
	short := NewBuilder("short").Mov(R0, 0).Exit().MustBuild()
	b := NewBuilder("long")
	for i := 0; i < 200; i++ {
		b.Mov(R6, int64(i))
	}
	long := b.Mov(R0, 0).Exit().MustBuild()
	_, c1 := runProg(t, short)
	_, c2 := runProg(t, long)
	if c2 <= c1 {
		t.Fatalf("longer programs must cost more: %d vs %d", c2, c1)
	}
}
