package bpf

import "testing"

func analyzeOK(t *testing.T, p *Program) *Analysis {
	t.Helper()
	a, err := Analyze(p, 0)
	if err != nil {
		t.Fatalf("analyze:\n%s\n%v", p.Disassemble(), err)
	}
	return a
}

func TestLivenessRegisters(t *testing.T) {
	p := NewBuilder("live-regs").
		Mov(R1, 1).     // pc 0: R1 live until pc 2
		Mov(R2, 2).     // pc 1: R2 dead (never read)
		MovReg(R0, R1). // pc 2
		Exit().         // pc 3
		MustBuild()
	lv := analyzeOK(t, p).Liveness()
	if lv.LiveOutRegs(0)&regBit(R1) == 0 {
		t.Fatal("R1 must be live after pc 0")
	}
	if lv.LiveOutRegs(1)&regBit(R2) != 0 {
		t.Fatal("R2 must be dead after pc 1")
	}
	if lv.LiveOutRegs(2)&regBit(R0) == 0 {
		t.Fatal("R0 must be live after pc 2 (read by exit)")
	}
	if lv.LiveOutRegs(3) != 0 {
		t.Fatal("nothing is live after exit")
	}
}

func TestLivenessStackBytes(t *testing.T) {
	p := NewBuilder("live-stack").
		StoreImm(R10, -8, 7).  // pc 0: bytes -8..-1 live (read at pc 2)
		StoreImm(R10, -16, 9). // pc 1: bytes -16..-9 dead
		Load(R0, R10, -8).     // pc 2
		Exit().
		MustBuild()
	lv := analyzeOK(t, p).Liveness()
	for i := 0; i < 8; i++ {
		if !lv.LiveOutStackByte(0, StackSize-8+i) {
			t.Fatalf("stack byte -8+%d must be live after pc 0", i)
		}
		if lv.LiveOutStackByte(1, StackSize-16+i) {
			t.Fatalf("stack byte -16+%d must be dead after pc 1", i)
		}
	}
}

func TestLivenessHelperStackArgs(t *testing.T) {
	// PerfOutput reads size bytes through an ArgPtrSized argument: the
	// buffer bytes must be live at the store that fills them.
	b := NewBuilder("live-helper")
	rb := b.AddMap(NewPerfRingBuffer("rb", 4))
	b.StoreImm(R10, -8, 42).
		LoadMapPtr(R1, rb).
		MovReg(R2, R10).
		Sub(R2, 8).
		Mov(R3, 8).
		Call(HelperPerfOutput).
		Mov(R0, 0).
		Exit()
	p := b.MustBuild()
	lv := analyzeOK(t, p).Liveness()
	for i := 0; i < 8; i++ {
		if !lv.LiveOutStackByte(0, StackSize-8+i) {
			t.Fatalf("buffer byte -8+%d must be live after the store (helper reads it)", i)
		}
	}
}

func TestLivenessBranchesJoin(t *testing.T) {
	// R1 is read on one branch only; it must still be live before the
	// conditional (may-liveness).
	p := NewBuilder("live-branch").
		Mov(R6, 5).
		Call(HelperKtime).
		Jeq(R0, 0, "use").
		Mov(R0, 0).
		Exit().
		Label("use").
		MovReg(R0, R6).
		Exit().
		MustBuild()
	lv := analyzeOK(t, p).Liveness()
	if lv.LiveOutRegs(0)&regBit(R6) == 0 {
		t.Fatal("R6 must be live across the branch (used on taken edge)")
	}
}

func TestReachingDefs(t *testing.T) {
	p := NewBuilder("rd").
		Mov(R6, 1). // pc 0
		Call(HelperKtime).
		Jeq(R0, 0, "skip").
		Mov(R6, 2). // pc 3
		Label("skip").
		MovReg(R0, R6). // pc 4: R6 def is pc 0 or pc 3 -> multi
		Exit().
		MustBuild()
	a := analyzeOK(t, p)
	rd := a.ReachingDefs()
	if got := rd.At(1, R6); got != 0 {
		t.Fatalf("R6 at pc 1 should reach from pc 0, got %d", got)
	}
	if got := rd.At(4, R6); got != rdMulti {
		t.Fatalf("R6 at pc 4 should be multi, got %d", got)
	}
	if got := rd.At(0, R10); got != rdEntry {
		t.Fatalf("R10 at entry should be rdEntry, got %d", got)
	}
	if got := rd.At(0, R5); got != rdNone {
		t.Fatalf("R5 at entry should be rdNone, got %d", got)
	}
	// After the call, R0's unique def is the call instruction.
	if got := rd.At(2, R0); got != 1 {
		t.Fatalf("R0 at pc 2 should reach from the call at pc 1, got %d", got)
	}
}

func TestAnalysisCondEdges(t *testing.T) {
	p := NewBuilder("edges").
		Mov(R0, 5).
		Jeq(R0, 5, "t"). // always taken
		Mov(R0, 1).
		Label("t").
		Exit().
		MustBuild()
	a := analyzeOK(t, p)
	taken, fall := a.CondEdges(1)
	if !taken || fall {
		t.Fatalf("expected taken-only edge, got taken=%v fall=%v", taken, fall)
	}
	if a.Reached(2) {
		t.Fatal("pc 2 must be unreachable")
	}
}
