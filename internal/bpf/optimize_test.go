package bpf

import (
	"math"
	"testing"
)

// optimizeAndRun optimizes p, asserts the result still verifies and that
// both versions return the same R0, and returns the optimized program
// with its stats.
func optimizeAndRun(t *testing.T, p *Program) (*Program, OptStats) {
	t.Helper()
	opt, stats, err := Optimize(p, 0)
	if err != nil {
		t.Fatalf("optimize:\n%s\n%v", p.Disassemble(), err)
	}
	if stats.BeforeInsns != len(p.Insns) || stats.AfterInsns != len(opt.Insns) {
		t.Fatalf("stats insn counts %d/%d do not match programs %d/%d",
			stats.BeforeInsns, stats.AfterInsns, len(p.Insns), len(opt.Insns))
	}
	task := testTask()
	lpO, err := Load(p, 0)
	if err != nil {
		t.Fatalf("load original: %v", err)
	}
	lpN, err := Load(opt, 0)
	if err != nil {
		t.Fatalf("load optimized:\n%s\n%v", opt.Disassemble(), err)
	}
	r0, _, errO := lpO.Run(task, nil)
	r1, _, errN := lpN.Run(task, nil)
	if errO != nil || errN != nil {
		t.Fatalf("run: original %v, optimized %v", errO, errN)
	}
	if r0 != r1 {
		t.Fatalf("behavior changed: original R0=%d, optimized R0=%d\noriginal:\n%s\noptimized:\n%s",
			r0, r1, p.Disassemble(), opt.Disassemble())
	}
	return opt, stats
}

func TestOptimizeConstFoldAndDCE(t *testing.T) {
	p := NewBuilder("fold").
		Mov(R1, 6).
		Mov(R2, 7).
		MulReg(R1, R2).
		MovReg(R0, R1).
		Exit().
		MustBuild()
	opt, stats := optimizeAndRun(t, p)
	if stats.FoldedConst == 0 {
		t.Fatalf("expected constant folds, got %+v", stats)
	}
	if len(opt.Insns) != 2 {
		t.Fatalf("expected 2 insns (mov r0, 42; exit), got:\n%s", opt.Disassemble())
	}
	if in := opt.Insns[0]; in.Op != OpMovImm || in.Dst != R0 || in.Imm != 42 {
		t.Fatalf("expected mov r0, 42, got %q", in.String())
	}
}

func TestOptimizeBranchAlwaysTaken(t *testing.T) {
	p := NewBuilder("always").
		Mov(R0, 5).
		Jeq(R0, 5, "out").
		Mov(R0, 99). // provably unreachable
		Label("out").
		Exit().
		MustBuild()
	opt, stats := optimizeAndRun(t, p)
	if stats.SimplifiedBranch == 0 || stats.RemovedUnreached == 0 {
		t.Fatalf("expected branch simplification and unreachable removal, got %+v", stats)
	}
	if len(opt.Insns) != 2 {
		t.Fatalf("expected mov/exit, got:\n%s", opt.Disassemble())
	}
}

func TestOptimizeBranchNeverTaken(t *testing.T) {
	p := NewBuilder("never").
		Mov(R0, 5).
		Jeq(R0, 6, "other").
		Exit().
		Label("other").
		Mov(R0, 1).
		Exit().
		MustBuild()
	opt, stats := optimizeAndRun(t, p)
	if stats.SimplifiedBranch == 0 {
		t.Fatalf("expected a dropped never-taken branch, got %+v", stats)
	}
	if len(opt.Insns) != 2 {
		t.Fatalf("expected mov/exit, got:\n%s", opt.Disassemble())
	}
}

func TestOptimizeDeadStore(t *testing.T) {
	p := NewBuilder("deadstore").
		StoreImm(R10, -8, 41).
		StoreImm(R10, -8, 42). // first store is dead
		Load(R0, R10, -8).
		Exit().
		MustBuild()
	opt, stats := optimizeAndRun(t, p)
	if stats.RemovedStores != 1 {
		t.Fatalf("expected exactly the shadowed store removed, got %+v\n%s", stats, opt.Disassemble())
	}
	if len(opt.Insns) != 3 {
		t.Fatalf("expected 3 insns, got:\n%s", opt.Disassemble())
	}
}

// popFailureRegression builds the store→failing-pop→load miscompile shape:
// the pop destination aliases an earlier store whose value is the program
// result whenever the pop fails (always here — the stack map starts empty).
// Modeling stack_pop as a strong kill of the destination let dead-store
// elimination delete the store, changing R0 on the failure path. Shared
// with FuzzOptimize's raw-mode seed corpus.
func popFailureRegression() *Program {
	b := NewBuilder("opt/pop-fail")
	for _, m := range NewGenMaps() {
		b.AddMap(m)
	}
	return b.
		StoreImm(R10, -8, 0x5a). // observable iff the pop fails
		LoadMapPtr(R1, genMapStack).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperStackPop).
		Load(R0, R10, -8).
		Exit().
		MustBuild()
}

func TestOptimizeKeepsStoreAcrossFailingPop(t *testing.T) {
	p := popFailureRegression()
	opt, stats := optimizeAndRun(t, p) // also asserts R0 unchanged (0x5a)
	if stats.RemovedStores != 0 {
		t.Fatalf("store feeding the pop-failure path was eliminated: %+v\n%s",
			stats, opt.Disassemble())
	}
	found := false
	for _, in := range opt.Insns {
		if in.Op == OpStoreImm {
			found = true
		}
	}
	if !found {
		t.Fatalf("store missing from optimized program:\n%s", opt.Disassemble())
	}
}

func TestOptimizeDeadPureCall(t *testing.T) {
	p := NewBuilder("deadcall").
		Call(HelperKtime). // result overwritten before any read
		Mov(R0, 7).
		Exit().
		MustBuild()
	opt, stats := optimizeAndRun(t, p)
	if stats.RemovedCalls != 1 {
		t.Fatalf("expected the dead ktime call removed, got %+v", stats)
	}
	if len(opt.Insns) != 2 {
		t.Fatalf("expected mov/exit, got:\n%s", opt.Disassemble())
	}
}

func TestOptimizeKeepsImpureCall(t *testing.T) {
	p := NewBuilder("impure").
		Mov(R1, 123).
		Call(HelperTracePrintk). // side effect: must survive even with R0 dead
		Mov(R0, 0).
		Exit().
		MustBuild()
	opt, stats := optimizeAndRun(t, p)
	if stats.RemovedCalls != 0 {
		t.Fatalf("impure call must not be removed, got %+v", stats)
	}
	found := false
	for _, in := range opt.Insns {
		if in.Op == OpCall && in.Imm == HelperTracePrintk {
			found = true
		}
	}
	if !found {
		t.Fatalf("printk call missing from:\n%s", opt.Disassemble())
	}
}

func TestOptimizeJumpRemap(t *testing.T) {
	// A live conditional jump over a region containing dead code: dropping
	// the dead instructions must retarget the jump.
	p := NewBuilder("remap").
		Call(HelperKtime).
		Jeq(R0, 0, "zero").
		Mov(R3, 1). // dead
		Mov(R0, 10).
		Exit().
		Label("zero").
		Mov(R0, 20).
		Exit().
		MustBuild()
	opt, stats := optimizeAndRun(t, p)
	if stats.RemovedDead == 0 {
		t.Fatalf("expected dead mov removed, got %+v", stats)
	}
	if err := Verify(opt, 0); err != nil {
		t.Fatalf("remapped program does not verify:\n%s\n%v", opt.Disassemble(), err)
	}
	if len(opt.Insns) != len(p.Insns)-1 {
		t.Fatalf("expected exactly one insn removed:\n%s", opt.Disassemble())
	}
}

func TestOptimizeMinimalProgramUnchanged(t *testing.T) {
	p := NewBuilder("minimal").
		Call(HelperKtime).
		Exit().
		MustBuild()
	opt, stats := optimizeAndRun(t, p)
	if stats.Saved() != 0 || stats.Rounds != 0 {
		t.Fatalf("minimal program should be untouched, got %+v", stats)
	}
	if len(opt.Insns) != 2 {
		t.Fatalf("unexpected rewrite:\n%s", opt.Disassemble())
	}
}

// Scalars whose bits fall in the VM's pointer-tagged range must fold
// consistently with what the VM executes (static ALU dispatch makes the
// scalar path evalALU regardless of the value's tag bits).
func TestOptimizeTaggedScalarFold(t *testing.T) {
	p := NewBuilder("tagged").
		Mov(R1, math.MinInt64).
		Mul(R1, 2). // wraps to 0 under evalALU
		MovReg(R0, R1).
		Exit().
		MustBuild()
	opt, _ := optimizeAndRun(t, p)
	if in := opt.Insns[0]; in.Op != OpMovImm || in.Imm != 0 {
		t.Fatalf("expected fold to mov r0, 0, got:\n%s", opt.Disassemble())
	}
}

func TestOptimizeRejectsUnverifiableInput(t *testing.T) {
	p := &Program{Name: "bad", Insns: []Insn{{Op: OpExit}}} // R0 uninitialized
	if _, _, err := Optimize(p, 0); err == nil {
		t.Fatal("expected error for unverifiable input")
	}
}

func TestOptimizePreservesLoop(t *testing.T) {
	b := NewBuilder("loop")
	b.Mov(R1, 0).
		Mov(R0, 0).
		Label("top").
		Add(R0, 3).
		Add(R1, 1).
		JneLoop(R1, 4, "top", 8).
		Exit()
	p := b.MustBuild()
	opt, _ := optimizeAndRun(t, p)
	lp, err := Load(opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0, _, _ := lp.Run(testTask(), nil)
	if r0 != 12 {
		t.Fatalf("loop result changed: got %d, want 12\n%s", r0, opt.Disassemble())
	}
}
