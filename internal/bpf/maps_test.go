package bpf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHashMapBasics(t *testing.T) {
	m := NewHashMap("h", 8, 16, 4)
	if m.Name() != "h" || m.KeySize() != 8 || m.ValueSize() != 16 || m.MaxEntries() != 4 {
		t.Fatalf("metadata: %v %v %v %v", m.Name(), m.KeySize(), m.ValueSize(), m.MaxEntries())
	}
	key := U64Key(42)
	if m.Lookup(key) != nil {
		t.Fatalf("lookup on empty map must be nil")
	}
	val := make([]byte, 16)
	PutU64(val, 7)
	if err := m.Update(key, val); err != nil {
		t.Fatal(err)
	}
	got := m.Lookup(key)
	if got == nil || U64(got) != 7 {
		t.Fatalf("lookup after update: %v", got)
	}
	// Map value pointers alias storage: in-place writes persist.
	PutU64(got, 99)
	if U64(m.Lookup(key)) != 99 {
		t.Fatalf("value mutation must persist (BPF map-value-pointer semantics)")
	}
	if !m.Delete(key) {
		t.Fatalf("delete must report presence")
	}
	if m.Delete(key) {
		t.Fatalf("double delete must report absence")
	}
}

func TestHashMapSizeChecks(t *testing.T) {
	m := NewHashMap("h", 8, 8, 4)
	if err := m.Update([]byte{1}, make([]byte, 8)); err != ErrBadKeySize {
		t.Fatalf("short key: %v", err)
	}
	if err := m.Update(U64Key(1), make([]byte, 3)); err != ErrBadValSize {
		t.Fatalf("short value: %v", err)
	}
	if m.Lookup([]byte{1, 2}) != nil {
		t.Fatalf("bad key size lookup must be nil")
	}
	if m.Delete([]byte{1}) {
		t.Fatalf("bad key size delete must be false")
	}
}

func TestHashMapCapacity(t *testing.T) {
	m := NewHashMap("h", 8, 8, 2)
	v := make([]byte, 8)
	if err := m.Update(U64Key(1), v); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(U64Key(2), v); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(U64Key(3), v); err != ErrMapFull {
		t.Fatalf("over capacity: %v", err)
	}
	// Replacing an existing key is allowed at capacity.
	if err := m.Update(U64Key(2), v); err != nil {
		t.Fatalf("replace at capacity: %v", err)
	}
	if m.Len() != 2 {
		t.Fatalf("len: %d", m.Len())
	}
}

func TestHashMapUpdateCopies(t *testing.T) {
	m := NewHashMap("h", 8, 8, 4)
	v := make([]byte, 8)
	PutU64(v, 5)
	_ = m.Update(U64Key(1), v)
	PutU64(v, 6) // mutate caller buffer after update
	if U64(m.Lookup(U64Key(1))) != 5 {
		t.Fatalf("Update must copy the value")
	}
}

func TestArrayMap(t *testing.T) {
	a := NewArrayMap("a", 8, 3)
	if a.KeySize() != 8 || a.Len() != 3 || a.MaxEntries() != 3 {
		t.Fatalf("metadata")
	}
	if a.Lookup(U64Key(3)) != nil {
		t.Fatalf("out-of-range index must be nil")
	}
	slot := a.Lookup(U64Key(1))
	if slot == nil || U64(slot) != 0 {
		t.Fatalf("slots must exist zeroed")
	}
	v := make([]byte, 8)
	PutU64(v, 11)
	if err := a.Update(U64Key(1), v); err != nil {
		t.Fatal(err)
	}
	if U64(a.Lookup(U64Key(1))) != 11 {
		t.Fatalf("update")
	}
	if err := a.Update(U64Key(9), v); err == nil {
		t.Fatalf("out-of-range update must fail")
	}
	if err := a.Update(U64Key(1), []byte{1}); err != ErrBadValSize {
		t.Fatalf("bad value size: %v", err)
	}
	if !a.Delete(U64Key(1)) || U64(a.Lookup(U64Key(1))) != 0 {
		t.Fatalf("delete must zero the slot")
	}
	if a.Delete(U64Key(5)) {
		t.Fatalf("out-of-range delete")
	}
}

func TestStackMapLIFO(t *testing.T) {
	s := NewStackMap("s", 8, 3)
	if s.KeySize() != 0 || s.ValueSize() != 8 {
		t.Fatalf("metadata")
	}
	if _, err := s.Pop(); err != ErrStackEmpty {
		t.Fatalf("pop empty: %v", err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := s.Push(U64Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Push(U64Key(4)); err != ErrMapFull {
		t.Fatalf("push full: %v", err)
	}
	if top := s.Lookup(nil); U64(top) != 3 {
		t.Fatalf("peek: %v", U64(top))
	}
	for want := uint64(3); want >= 1; want-- {
		v, err := s.Pop()
		if err != nil || U64(v) != want {
			t.Fatalf("pop: %v %v want %d", v, err, want)
		}
	}
	_ = s.Push(U64Key(9))
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("clear")
	}
	if err := s.Push([]byte{1}); err != ErrBadValSize {
		t.Fatalf("bad size push: %v", err)
	}
}

func TestStackMapMapInterface(t *testing.T) {
	s := NewStackMap("s", 8, 2)
	if err := s.Update(nil, U64Key(5)); err != nil {
		t.Fatal(err)
	}
	if !s.Delete(nil) {
		t.Fatalf("delete pops")
	}
	if s.Delete(nil) {
		t.Fatalf("delete on empty")
	}
}

func TestPerTaskMap(t *testing.T) {
	p := NewPerTaskMap("p", 16)
	slot := p.Lookup(U64Key(7))
	if slot == nil || len(slot) != 16 {
		t.Fatalf("per-task slot must auto-create")
	}
	PutU64(slot, 3)
	if U64(p.Lookup(U64Key(7))) != 3 {
		t.Fatalf("slot must persist per PID")
	}
	if U64(p.Lookup(U64Key(8))) != 0 {
		t.Fatalf("other PID must have its own slot")
	}
	if p.Len() != 2 {
		t.Fatalf("len: %d", p.Len())
	}
	if err := p.Update(U64Key(7), make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if U64(p.Lookup(U64Key(7))) != 0 {
		t.Fatalf("update must overwrite")
	}
	if !p.Delete(U64Key(7)) || p.Delete(U64Key(7)) {
		t.Fatalf("delete semantics")
	}
	if p.Lookup([]byte{1}) != nil || p.Delete([]byte{1}) {
		t.Fatalf("bad key size")
	}
	if err := p.Update(U64Key(1), []byte{1}); err != ErrBadValSize {
		t.Fatalf("bad value size: %v", err)
	}
	if p.MaxEntries() != 0 || p.KeySize() != 8 || p.ValueSize() != 16 || p.Name() != "p" {
		t.Fatalf("metadata")
	}
}

func TestPerfRingBufferOrder(t *testing.T) {
	r := NewPerfRingBuffer("rb", 4)
	for i := byte(0); i < 3; i++ {
		r.Submit([]byte{i})
	}
	got := r.Drain(0)
	if len(got) != 3 {
		t.Fatalf("drain count: %d", len(got))
	}
	for i, g := range got {
		if g[0] != byte(i) {
			t.Fatalf("FIFO order violated: %v", got)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("drain must empty the ring")
	}
}

func TestPerfRingBufferOverwrite(t *testing.T) {
	r := NewPerfRingBuffer("rb", 2)
	for i := byte(0); i < 5; i++ {
		r.Submit([]byte{i})
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped: %d want 3", r.Dropped())
	}
	if r.Submitted() != 5 {
		t.Fatalf("submitted: %d want 5", r.Submitted())
	}
	got := r.Drain(0)
	if len(got) != 2 || got[0][0] != 3 || got[1][0] != 4 {
		t.Fatalf("overwrite must keep newest: %v", got)
	}
}

func TestPerfRingBufferDrainMax(t *testing.T) {
	r := NewPerfRingBuffer("rb", 8)
	for i := byte(0); i < 6; i++ {
		r.Submit([]byte{i})
	}
	first := r.Drain(2)
	if len(first) != 2 || first[0][0] != 0 || first[1][0] != 1 {
		t.Fatalf("bounded drain: %v", first)
	}
	rest := r.Drain(0)
	if len(rest) != 4 || rest[0][0] != 2 {
		t.Fatalf("remainder: %v", rest)
	}
}

func TestPerfRingBufferSubmitCopies(t *testing.T) {
	r := NewPerfRingBuffer("rb", 2)
	buf := []byte{1, 2, 3}
	r.Submit(buf)
	buf[0] = 9
	got := r.Drain(0)
	if !bytes.Equal(got[0], []byte{1, 2, 3}) {
		t.Fatalf("Submit must copy: %v", got[0])
	}
}

func TestPerfRingBufferReset(t *testing.T) {
	r := NewPerfRingBuffer("rb", 2)
	r.Submit([]byte{1})
	r.Submit([]byte{2})
	r.Submit([]byte{3})
	r.Reset()
	if r.Len() != 0 || r.Submitted() != 0 || r.Dropped() != 0 {
		t.Fatalf("reset must clear everything")
	}
}

func TestPerfRingBufferMapAdapter(t *testing.T) {
	r := NewPerfRingBuffer("rb", 2)
	if r.Lookup(nil) != nil || r.Delete(nil) {
		t.Fatalf("lookup/delete unsupported")
	}
	if err := r.Update(nil, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("update must submit")
	}
	if r.KeySize() != 0 || r.ValueSize() != 0 || r.MaxEntries() != 2 || r.Name() != "rb" {
		t.Fatalf("metadata")
	}
}

func TestPerfRingBufferMinCapacity(t *testing.T) {
	r := NewPerfRingBuffer("rb", 0)
	r.Submit([]byte{1})
	if r.Len() != 1 {
		t.Fatalf("capacity must clamp to >=1")
	}
}

// Property: a ring buffer drained after N submissions holds exactly
// min(N, capacity) samples and they are the newest N in order.
func TestPerfRingBufferProperty(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		r := NewPerfRingBuffer("rb", capacity)
		for i := 0; i < int(n); i++ {
			r.Submit([]byte{byte(i)})
		}
		got := r.Drain(0)
		want := int(n)
		if want > capacity {
			want = capacity
		}
		if len(got) != want {
			return false
		}
		for i, g := range got {
			if g[0] != byte(int(n)-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hash map behaves like a Go map for random operations.
func TestHashMapModelProperty(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Value uint64
	}
	f := func(ops []op) bool {
		m := NewHashMap("h", 8, 8, 1<<20)
		model := map[uint64]uint64{}
		for _, o := range ops {
			k := U64Key(uint64(o.Key))
			switch o.Kind % 3 {
			case 0:
				v := make([]byte, 8)
				PutU64(v, o.Value)
				_ = m.Update(k, v)
				model[uint64(o.Key)] = o.Value
			case 1:
				got := m.Lookup(k)
				want, ok := model[uint64(o.Key)]
				if ok != (got != nil) {
					return false
				}
				if ok && U64(got) != want {
					return false
				}
			case 2:
				_, ok := model[uint64(o.Key)]
				if m.Delete(k) != ok {
					return false
				}
				delete(model, uint64(o.Key))
			}
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
