package bpf

import (
	"testing"

	"tscout/internal/kernel"
	"tscout/internal/sim"
)

// hasBackEdge reports whether any jump in p targets an earlier or equal pc.
// Programs without back-edges execute at most len(Insns) instructions, so
// they can never legitimately exhaust the runtime budget.
func hasBackEdge(p *Program) bool {
	for pc, in := range p.Insns {
		if isJump(in.Op) && pc+1+int(in.Off) <= pc {
			return true
		}
	}
	return false
}

// runGenerated loads and executes p against a fresh single-task kernel,
// returning the run error (nil for clean completion).
func runGenerated(t *testing.T, p *Program, seed int64) error {
	t.Helper()
	lp, err := Load(p, 0)
	if err != nil {
		t.Fatalf("generated program failed verification: %v\n%s", err, p.Disassemble())
	}
	k := kernel.New(sim.LargeHW, seed, 0)
	task := k.NewTask("gen")
	_, _, rerr := lp.Run(task, []uint64{1, 2, 3, 4})
	return rerr
}

// TestGenProgramDeterministic: the same seed must produce byte-identical
// programs, or corpus replay is meaningless.
func TestGenProgramDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := GenProgram(seed, 30)
		b := GenProgram(seed, 30)
		if len(a.Insns) != len(b.Insns) {
			t.Fatalf("seed %d: lengths differ: %d vs %d", seed, len(a.Insns), len(b.Insns))
		}
		for i := range a.Insns {
			if a.Insns[i] != b.Insns[i] {
				t.Fatalf("seed %d: insn %d differs: %v vs %v", seed, i, a.Insns[i], b.Insns[i])
			}
		}
	}
}

// TestGenProgramsVerifyAndRun is the generator's validity argument made
// executable: every generated program must verify and then run to clean
// completion (the §5.1 contract, from the constructive side).
func TestGenProgramsVerifyAndRun(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		steps := int(seed%37) + 1
		p := GenProgram(seed, steps)
		if err := runGenerated(t, p, seed); err != nil {
			t.Fatalf("seed %d steps %d: runtime fault: %v\n%s", seed, steps, err, p.Disassemble())
		}
	}
}

// TestInsnCodecRoundTrip: Encode/Decode must be inverse on every generated
// program so corpus entries reproduce the exact instruction stream.
func TestInsnCodecRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := GenProgram(seed, 25)
		got := DecodeInsns(EncodeInsns(p.Insns))
		if len(got) != len(p.Insns) {
			t.Fatalf("seed %d: round trip length %d != %d", seed, len(got), len(p.Insns))
		}
		for i := range got {
			if got[i] != p.Insns[i] {
				t.Fatalf("seed %d: insn %d: %v != %v", seed, i, got[i], p.Insns[i])
			}
		}
	}
}

// TestDecodeInsnsTruncation: partial trailing records are dropped, and
// oversized inputs are capped, never rejected.
func TestDecodeInsnsTruncation(t *testing.T) {
	p := GenProgram(1, 10)
	enc := EncodeInsns(p.Insns)
	got := DecodeInsns(enc[:len(enc)-3])
	if len(got) != len(p.Insns)-1 {
		t.Fatalf("truncated decode: %d insns, want %d", len(got), len(p.Insns)-1)
	}
	huge := make([]byte, (maxDecodedInsns+10)*InsnWireBytes)
	if n := len(DecodeInsns(huge)); n != maxDecodedInsns {
		t.Fatalf("cap: decoded %d insns, want %d", n, maxDecodedInsns)
	}
}

// TestMutateInsnsDeterministic: mutation is a pure function of its inputs.
func TestMutateInsnsDeterministic(t *testing.T) {
	p := GenProgram(7, 20)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	a := MutateInsns(p.Insns, data)
	b := MutateInsns(p.Insns, data)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("insn %d differs", i)
		}
	}
	// The original must be left untouched (mutation copies).
	q := GenProgram(7, 20)
	for i := range p.Insns {
		if p.Insns[i] != q.Insns[i] {
			t.Fatalf("MutateInsns modified its input at insn %d", i)
		}
	}
}

// TestReadCounterOutOfRange is the regression test for the helper crash
// found by the fuzz harness: a verified program feeding an arbitrary
// counter selector into read_perf_counter panicked in PerfContext.Read
// instead of reading 0.
func TestReadCounterOutOfRange(t *testing.T) {
	p := NewBuilder("badctr").
		Mov(R1, 9999).
		Mov(R2, int64(CounterPartRaw)).
		Call(HelperReadCounter).
		Exit().MustBuild()
	lp, err := Load(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(sim.LargeHW, 1, 0)
	ret, _, rerr := lp.Run(k.NewTask("w"), nil)
	if rerr != nil {
		t.Fatalf("run: %v", rerr)
	}
	if ret != 0 {
		t.Fatalf("invalid counter read %d, want 0", ret)
	}
}
