package bpf

import (
	"errors"
	"strings"
	"testing"
)

func mustVerify(t *testing.T, p *Program) {
	t.Helper()
	if err := Verify(p, 0); err != nil {
		t.Fatalf("expected program to verify:\n%s\nerror: %v", p.Disassemble(), err)
	}
}

func mustReject(t *testing.T, p *Program, substr string) {
	t.Helper()
	err := Verify(p, 0)
	if err == nil {
		t.Fatalf("expected rejection (%s):\n%s", substr, p.Disassemble())
	}
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("rejection must wrap ErrVerification: %v", err)
	}
	if substr != "" && !strings.Contains(err.Error(), substr) {
		t.Fatalf("rejection reason %q does not mention %q", err.Error(), substr)
	}
}

func trivialProgram() *Program {
	return NewBuilder("trivial").Mov(R0, 0).Exit().MustBuild()
}

func TestVerifyTrivial(t *testing.T) {
	mustVerify(t, trivialProgram())
}

func TestVerifyEmptyProgram(t *testing.T) {
	mustReject(t, &Program{Name: "empty"}, "empty")
}

func TestVerifyTooLong(t *testing.T) {
	b := NewBuilder("long")
	for i := 0; i < 100; i++ {
		b.Mov(R0, 0)
	}
	b.Exit()
	p := b.MustBuild()
	if err := Verify(p, 10); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("length limit: %v", err)
	}
}

func TestVerifyExitWithoutR0(t *testing.T) {
	p := &Program{Name: "nor0", Insns: []Insn{{Op: OpExit}}}
	mustReject(t, p, "R0")
}

func TestVerifyUninitRegisterUse(t *testing.T) {
	p := NewBuilder("uninit").MovReg(R0, R3).Exit().MustBuild()
	mustReject(t, p, "uninitialized")
}

func TestVerifyWriteToR10(t *testing.T) {
	p := NewBuilder("r10").Mov(R10, 5).Mov(R0, 0).Exit().MustBuild()
	mustReject(t, p, "frame pointer")
}

func TestVerifyJumpOutOfRange(t *testing.T) {
	p := &Program{Name: "jmp", Insns: []Insn{
		{Op: OpJa, Off: 5},
		{Op: OpExit},
	}}
	mustReject(t, p, "out of range")
}

func TestVerifyUnreachable(t *testing.T) {
	p := &Program{Name: "unreach", Insns: []Insn{
		{Op: OpMovImm, Dst: R0, Imm: 0},
		{Op: OpExit},
		{Op: OpMovImm, Dst: R1, Imm: 1}, // dead
		{Op: OpExit},
	}}
	mustReject(t, p, "unreachable")
}

func TestVerifyFallOffEnd(t *testing.T) {
	p := &Program{Name: "fall", Insns: []Insn{
		{Op: OpMovImm, Dst: R0, Imm: 0},
	}}
	mustReject(t, p, "falls off")
}

func TestVerifyBackwardJumpWithoutBound(t *testing.T) {
	p := &Program{Name: "loop", Insns: []Insn{
		{Op: OpMovImm, Dst: R0, Imm: 0},
		{Op: OpJa, Off: -2}, // back to insn 0, no bound
		{Op: OpExit},
	}}
	mustReject(t, p, "loop bound")
}

func TestVerifyBoundedLoopAccepted(t *testing.T) {
	// for r6 = 0; r6 != 10; r6++ {}
	p := NewBuilder("boundedloop").
		Mov(R6, 0).
		Label("top").
		Add(R6, 1).
		JneLoop(R6, 10, "top", 10).
		Mov(R0, 0).
		Exit().
		MustBuild()
	mustVerify(t, p)
}

func TestVerifyDivisionByZeroImm(t *testing.T) {
	p := NewBuilder("div0").Mov(R0, 1).Div(R0, 0).Exit().MustBuild()
	mustReject(t, p, "division")
}

func TestVerifyDivisionByKnownZeroReg(t *testing.T) {
	p := NewBuilder("divr0").
		Mov(R0, 1).Mov(R1, 0).DivReg(R0, R1).Exit().MustBuild()
	mustReject(t, p, "known-zero")
}

func TestVerifyShiftRange(t *testing.T) {
	p := NewBuilder("shift").Mov(R0, 1).Lsh(R0, 64).Exit().MustBuild()
	mustReject(t, p, "shift")
}

func TestVerifyStackBounds(t *testing.T) {
	// Store below the stack.
	p := NewBuilder("oob").
		MovReg(R1, R10).
		StoreImm(R1, -(StackSize+8), 1).
		Mov(R0, 0).Exit().MustBuild()
	mustReject(t, p, "out of bounds")

	// Store above the stack top.
	p2 := NewBuilder("oob2").
		MovReg(R1, R10).
		StoreImm(R1, 0, 1). // [r10+0..8) is above the stack
		Mov(R0, 0).Exit().MustBuild()
	mustReject(t, p2, "out of bounds")

	// A store at the last valid slot verifies.
	p3 := NewBuilder("ok").
		MovReg(R1, R10).
		StoreImm(R1, -StackSize, 1).
		StoreImm(R1, -8, 2).
		Mov(R0, 0).Exit().MustBuild()
	mustVerify(t, p3)
}

func TestVerifyUninitializedStackRead(t *testing.T) {
	p := NewBuilder("stackread").
		Load(R0, R10, -8). // never written
		Exit().MustBuild()
	mustReject(t, p, "uninitialized stack")
}

func TestVerifyInitializedStackReadOK(t *testing.T) {
	p := NewBuilder("stackrw").
		StoreImm(R10, -8, 77).
		Load(R0, R10, -8).
		Exit().MustBuild()
	mustVerify(t, p)
}

func TestVerifyStackInitJoin(t *testing.T) {
	// Only one branch initializes [-8]; the join must mark it uninit. The
	// condition must be genuinely unknown (ktime), because a constant
	// condition is now resolved by branch-feasibility pruning.
	p := NewBuilder("join").
		Call(HelperKtime).
		Jeq(R0, 0, "skip").
		StoreImm(R10, -8, 5).
		Label("skip").
		Load(R0, R10, -8).
		Exit().MustBuild()
	mustReject(t, p, "uninitialized stack")
}

func TestVerifyInfeasibleBranchPruned(t *testing.T) {
	// R6 is the constant 1, so `jeq r6, 0` is provably never taken: the
	// path that skips the store is infeasible and the read of [-8] is
	// safe. The kind-only verifier rejected this; the value-range
	// verifier must accept it.
	p := NewBuilder("prune").
		Mov(R6, 1).
		Jeq(R6, 0, "skip").
		StoreImm(R10, -8, 5).
		Label("skip").
		Load(R0, R10, -8).
		Exit().MustBuild()
	mustVerify(t, p)
}

func TestVerifyRegisterOffsetStackAccess(t *testing.T) {
	// An unknown scalar masked to [0, 56] and aligned to 8 indexes an
	// 8-slot stack array: every offset in [-64, -8] is in bounds and
	// initialized, so the range-tracking verifier must accept it.
	b := NewBuilder("regoff")
	for off := int32(-64); off < 0; off += 8 {
		b.StoreImm(R10, off, 7)
	}
	p := b.
		Call(HelperKtime).
		And(R0, 56). // r0 in {0, 8, ..., 56}
		MovReg(R1, R10).
		Sub(R1, 64).
		AddReg(R1, R0).
		Load(R0, R1, 0).
		Exit().MustBuild()
	mustVerify(t, p)

	// Without the mask the offset is unbounded and must still be rejected.
	p2 := NewBuilder("regoff-bad").
		StoreImm(R10, -8, 7).
		Call(HelperKtime).
		MovReg(R1, R10).
		AddReg(R1, R0).
		Load(R0, R1, 0).
		Exit().MustBuild()
	mustReject(t, p2, "unknown scalar")
}

func TestVerifyRegisterOffsetMapValueAccess(t *testing.T) {
	// A bounds-checked scalar indexes into a 32-byte map value. The
	// conditional edge refinement must prove r6*8 stays inside the value.
	m := NewHashMap("m", 8, 32, 4)
	b := NewBuilder("mapoff")
	idx := b.AddMap(m)
	p := b.StoreImm(R10, -8, 1).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperMapLookup).
		Jeq(R0, 0, "miss").
		MovReg(R6, R0).
		Call(HelperKtime).
		Jgt(R0, 3, "miss"). // r0 <= 3 on fallthrough
		Lsh(R0, 3).         // r0 in {0, 8, 16, 24}
		AddReg(R6, R0).
		Load(R0, R6, 0). // offsets [0,24] + 8 <= 32: in bounds
		Exit().
		Label("miss").
		Mov(R0, 0).
		Exit().MustBuild()
	mustVerify(t, p)
}

func TestVerifyLoadThroughScalar(t *testing.T) {
	p := NewBuilder("badload").
		Mov(R1, 1234).
		Load(R0, R1, 0).
		Exit().MustBuild()
	mustReject(t, p, "load through")
}

func TestVerifyPointerLeakToMemory(t *testing.T) {
	p := NewBuilder("leak").
		MovReg(R1, R10).
		Store(R10, -8, R1). // storing a pointer
		Mov(R0, 0).Exit().MustBuild()
	mustReject(t, p, "pointer leak")
}

func TestVerifyPointerALURestricted(t *testing.T) {
	p := NewBuilder("ptrmul").
		MovReg(R1, R10).
		Mul(R1, 2).
		Mov(R0, 0).Exit().MustBuild()
	mustReject(t, p, "forbidden ALU op on pointer")
}

func TestVerifyPointerArithmeticUnknownScalar(t *testing.T) {
	p := NewBuilder("ptrvar").
		Call(HelperKtime). // r0 = unknown scalar
		MovReg(R1, R10).
		AddReg(R1, R0).
		Mov(R0, 0).
		Exit().MustBuild()
	mustReject(t, p, "unknown scalar")
}

func TestVerifyMapIndexRange(t *testing.T) {
	p := NewBuilder("badmap").
		LoadMapPtr(R1, 3). // no maps registered
		Mov(R0, 0).Exit().MustBuild()
	mustReject(t, p, "map index")
}

func TestVerifyUnknownHelper(t *testing.T) {
	p := NewBuilder("badhelper").Call(999).Exit().MustBuild()
	mustReject(t, p, "unknown helper")
}

func TestVerifyHelperArgTypes(t *testing.T) {
	m := NewHashMap("m", 8, 8, 4)
	b := NewBuilder("badargs")
	idx := b.AddMap(m)
	_ = idx
	// map_lookup with a scalar instead of a map handle.
	p := b.Mov(R1, 5).
		MovReg(R2, R10).
		Call(HelperMapLookup).
		Exit().MustBuild()
	mustReject(t, p, "map handle")
}

func TestVerifyHelperKeyNotStackPtr(t *testing.T) {
	m := NewHashMap("m", 8, 8, 4)
	b := NewBuilder("badkey")
	idx := b.AddMap(m)
	p := b.LoadMapPtr(R1, idx).
		Mov(R2, 1234). // scalar, not a pointer
		Call(HelperMapLookup).
		Exit().MustBuild()
	mustReject(t, p, "stack pointer")
}

func TestVerifyHelperKeyUninitialized(t *testing.T) {
	m := NewHashMap("m", 8, 8, 4)
	b := NewBuilder("uninitkey")
	idx := b.AddMap(m)
	p := b.LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8). // key bytes never written
		Call(HelperMapLookup).
		Exit().MustBuild()
	mustReject(t, p, "uninitialized stack")
}

func TestVerifyNullCheckRequired(t *testing.T) {
	m := NewHashMap("m", 8, 8, 4)
	b := NewBuilder("nonull")
	idx := b.AddMap(m)
	p := b.StoreImm(R10, -8, 1).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperMapLookup).
		Load(R0, R0, 0). // deref without null check
		Exit().MustBuild()
	mustReject(t, p, "NULL")
}

func TestVerifyNullCheckedLookupOK(t *testing.T) {
	m := NewHashMap("m", 8, 8, 4)
	b := NewBuilder("nullok")
	idx := b.AddMap(m)
	p := b.StoreImm(R10, -8, 1).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperMapLookup).
		Jeq(R0, 0, "miss").
		Load(R0, R0, 0). // safe after null check
		Exit().
		Label("miss").
		Mov(R0, 0).
		Exit().MustBuild()
	mustVerify(t, p)
}

func TestVerifyMapValueBounds(t *testing.T) {
	m := NewHashMap("m", 8, 16, 4)
	b := NewBuilder("valbounds")
	idx := b.AddMap(m)
	p := b.StoreImm(R10, -8, 1).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperMapLookup).
		Jeq(R0, 0, "miss").
		Load(R1, R0, 16). // offset 16..24 is outside the 16-byte value
		Mov(R0, 0).
		Exit().
		Label("miss").
		Mov(R0, 0).
		Exit().MustBuild()
	mustReject(t, p, "outside value size")
}

func TestVerifyPerfOutputSizeMustBeConst(t *testing.T) {
	rb := NewPerfRingBuffer("rb", 4)
	b := NewBuilder("perfsize")
	idx := b.AddMap(rb)
	p := b.StoreImm(R10, -8, 1).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperKtime). // clobbers: r0 unknown — reorder below
		MustBuild()
	_ = p
	// Build the real case: size in R3 is unknown.
	b2 := NewBuilder("perfsize2")
	idx2 := b2.AddMap(rb)
	p2 := b2.StoreImm(R10, -8, 1).
		Call(HelperKtime). // r0 = unknown
		LoadMapPtr(R1, idx2).
		MovReg(R2, R10).Sub(R2, 8).
		MovReg(R3, R0). // unknown size
		Call(HelperPerfOutput).
		Exit().MustBuild()
	mustReject(t, p2, "known positive constant")
}

func TestVerifyPerfOutputOK(t *testing.T) {
	rb := NewPerfRingBuffer("rb", 4)
	b := NewBuilder("perfok")
	idx := b.AddMap(rb)
	p := b.StoreImm(R10, -16, 1).
		StoreImm(R10, -8, 2).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 16).
		Mov(R3, 16).
		Call(HelperPerfOutput).
		Mov(R0, 0).
		Exit().MustBuild()
	mustVerify(t, p)
}

func TestVerifyCallClobbersCallerSaved(t *testing.T) {
	p := NewBuilder("clobber").
		Mov(R1, 0).
		Call(HelperKtime).
		MovReg(R0, R1). // r1 was clobbered by the call
		Exit().MustBuild()
	mustReject(t, p, "uninitialized")
}

func TestVerifyCalleeSavedSurviveCalls(t *testing.T) {
	p := NewBuilder("preserve").
		Mov(R6, 42).
		Call(HelperKtime).
		MovReg(R0, R6).
		Exit().MustBuild()
	mustVerify(t, p)
}

func TestVerifyCondJumpOnPointer(t *testing.T) {
	p := NewBuilder("ptrjmp").
		MovReg(R1, R10).
		Jgt(R1, 5, "x").
		Mov(R0, 0).Exit().
		Label("x").Mov(R0, 1).Exit().MustBuild()
	mustReject(t, p, "")
}

func TestVerifyInvalidOpcode(t *testing.T) {
	p := &Program{Name: "bad", Insns: []Insn{{Op: Op(200)}}}
	mustReject(t, p, "invalid opcode")
}

func TestVerifyRegisterRange(t *testing.T) {
	p := &Program{Name: "badreg", Insns: []Insn{
		{Op: OpMovImm, Dst: Reg(12), Imm: 0},
		{Op: OpExit},
	}}
	mustReject(t, p, "register out of range")
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x").Ja("nowhere").Exit().Build(); err == nil {
		t.Fatalf("undefined label must fail assembly")
	}
	b := NewBuilder("y").Label("l").Label("l")
	if _, err := b.Mov(R0, 0).Exit().Build(); err == nil {
		t.Fatalf("duplicate label must fail assembly")
	}
}

func TestDisassembleSmoke(t *testing.T) {
	m := NewHashMap("m", 8, 8, 4)
	b := NewBuilder("dis")
	idx := b.AddMap(m)
	p := b.StoreImm(R10, -8, 1).
		LoadMapPtr(R1, idx).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperMapLookup).
		Jeq(R0, 0, "miss").
		Load(R0, R0, 0).
		Exit().
		Label("miss").Mov(R0, 0).Exit().MustBuild()
	text := p.Disassemble()
	for _, want := range []string{"ldmap", "call 1", "jeq", "exit", "[r10-8]"} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestVerifyPopDoesNotInitializeBuffer(t *testing.T) {
	// stack_pop writes its destination only when the pop succeeds, so the
	// verifier must not treat the call as initializing the buffer: a load
	// of never-stored bytes after a (possibly failing) pop is the model
	// gap that let dead-store elimination miscompile the failure path.
	build := func(preInit bool) *Program {
		b := NewBuilder("pop-uninit")
		for _, m := range NewGenMaps() {
			b.AddMap(m)
		}
		if preInit {
			b.StoreImm(R10, -8, 0)
		}
		return b.
			LoadMapPtr(R1, genMapStack).
			MovReg(R2, R10).Sub(R2, 8).
			Call(HelperStackPop).
			Load(R0, R10, -8).
			Exit().
			MustBuild()
	}
	if err := Verify(build(false), 0); err == nil {
		t.Fatal("load of pop buffer without prior init must be rejected")
	}
	if err := Verify(build(true), 0); err != nil {
		t.Fatalf("pre-initialized pop buffer rejected: %v", err)
	}
}

func TestVerifyRejectsHelperOnWrongMapKind(t *testing.T) {
	// Regression for a divergence found by FuzzVerify: stack_push/stack_pop
	// and perf_event_output verified against any map type, then faulted in
	// the VM's type assertion at runtime. The verifier must reject the
	// mismatch statically, like real eBPF's map/helper compatibility check.
	cases := []struct {
		name   string
		helper int64
		mapIdx int
		ok     bool
	}{
		{"pop on hash map", HelperStackPop, genMapHash, false},
		{"push on per-task map", HelperStackPush, genMapPerTask, false},
		{"pop on stack map", HelperStackPop, genMapStack, true},
		{"perf output on array map", HelperPerfOutput, genMapArray, false},
		{"perf output on ring", HelperPerfOutput, genMapRing, true},
		{"perf output on per-cpu ring", HelperPerfOutput, genMapPerCPU, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder("kind")
			for _, m := range NewGenMaps() {
				b.AddMap(m)
			}
			b.StoreImm(R10, -8, 0).
				LoadMapPtr(R1, tc.mapIdx).
				MovReg(R2, R10).Sub(R2, 8)
			if tc.helper == HelperPerfOutput {
				b.Mov(R3, 8)
			}
			p := b.Call(tc.helper).Exit().MustBuild()
			err := Verify(p, 0)
			if tc.ok && err != nil {
				t.Fatalf("compatible map rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("incompatible map accepted")
			}
		})
	}
}
