package bpf

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tscout/internal/kernel"
	"tscout/internal/sim"
)

// This file tests the post-verify JIT (compile.go): the compiled path must
// be observationally identical to the interpreter — same R0, same cost
// accounting, same helper trace, printk, and map end-states — and every
// decline reason must fall back to the interpreter cleanly. The named
// TestCompileRegression_* cases pin interpreter-vs-compiled divergences
// that the differential harness is prone to (scalar/pointer dispatch,
// unsigned ALU edge cases, helper object identity); each also has a raw
// corpus entry under testdata/fuzz/FuzzOptimize so the fuzzers keep
// revisiting the exact programs.

// assertCompiledAgreement runs p's instructions twice against fresh
// kernels, tasks, and map tables — once interpreted, once through the JIT
// (which may decline and fall back) — and fails on any observable
// divergence. Returns the compile outcome so callers can assert on it.
func assertCompiledAgreement(t *testing.T, p *Program, seed int64) CompileInfo {
	t.Helper()
	ir := runExecVariant(p.Name+"/interp", p.Insns, seed, false)
	cr := runExecVariant(p.Name+"/jit", p.Insns, seed, true)
	if (ir.err == nil) != (cr.err == nil) ||
		(ir.err != nil && ir.err.Error() != cr.err.Error()) {
		t.Fatalf("error diverged (compiled=%v reason=%q):\ninterp   %v\ncompiled %v\n%s",
			cr.info.Compiled, cr.info.Reason, ir.err, cr.err, p.Disassemble())
	}
	if ir.r0 != cr.r0 {
		t.Fatalf("R0 diverged: interp %#x, compiled %#x (reason=%q)\n%s",
			ir.r0, cr.r0, cr.info.Reason, p.Disassemble())
	}
	if ir.cost != cr.cost {
		t.Fatalf("cost diverged: interp %d, compiled %d\n%s", ir.cost, cr.cost, p.Disassemble())
	}
	if !reflect.DeepEqual(ir.trace, cr.trace) {
		t.Fatalf("helper traces diverged:\ninterp   %v\ncompiled %v\n%s",
			ir.trace, cr.trace, p.Disassemble())
	}
	if !reflect.DeepEqual(ir.printk, cr.printk) {
		t.Fatalf("printk diverged:\ninterp   %v\ncompiled %v\n%s",
			ir.printk, cr.printk, p.Disassemble())
	}
	for i := range ir.maps {
		if ir.maps[i] != cr.maps[i] {
			t.Fatalf("map %d end-state diverged:\ninterp   %s\ncompiled %s\n%s",
				i, ir.maps[i], cr.maps[i], p.Disassemble())
		}
	}
	return cr.info
}

func genMapsBuilder(name string) *Builder {
	b := NewBuilder(name)
	for _, m := range NewGenMaps() {
		b.AddMap(m)
	}
	return b
}

func TestCompileDispatchCounters(t *testing.T) {
	p := genMapsBuilder("jit/counters").Mov(R0, 7).Exit().MustBuild()
	lp, err := Load(p, 0)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	info := lp.Compile()
	if !info.Compiled || info.Reason != "" {
		t.Fatalf("straight-line program declined: %+v", info)
	}
	if lp.CompileInfo() != info {
		t.Fatalf("CompileInfo not retained: %+v vs %+v", lp.CompileInfo(), info)
	}
	k := kernel.New(sim.LargeHW, 1, 0)
	task := k.NewTask("jit")
	r0, _, rerr := lp.Run(task, nil)
	if rerr != nil || r0 != 7 {
		t.Fatalf("compiled run: r0=%d err=%v", r0, rerr)
	}
	if r0, _, rerr = lp.RunInterpreted(task, nil); rerr != nil || r0 != 7 {
		t.Fatalf("interpreted run: r0=%d err=%v", r0, rerr)
	}
	st := lp.JITStats()
	if !st.Compiled || st.CompiledRuns != 1 || st.InterpRuns != 1 || st.RuntimeFaults != 0 {
		t.Fatalf("dispatch counters: %+v", st)
	}
	if lp.Runs() != 2 {
		t.Fatalf("total runs %d, want 2", lp.Runs())
	}
}

// TestRuntimeFaultsCountedOnAttach is the regression test for the Attach
// error-swallowing bug: a runtime fault during an attached hit must be
// counted, not silently dropped, while the partial cost is still charged.
func TestRuntimeFaultsCountedOnAttach(t *testing.T) {
	// Hand-constructed (unverifiable) program: dereferences scalar R1=0.
	p := &Program{Name: "jit/fault", Insns: []Insn{
		{Op: OpLoad, Dst: R0, Src: R1},
		{Op: OpExit},
	}}
	lp := &LoadedProgram{prog: p, ptrALU: make([]bool, len(p.Insns))}
	k := kernel.New(sim.LargeHW, 1, 0)
	tp := k.Tracepoint("jit/fault-tp")
	lp.Attach(tp)
	task := k.NewTask("t")
	task.HitTracepoint(tp, nil)
	task.HitTracepoint(tp, nil)
	if got := lp.RuntimeFaults(); got != 2 {
		t.Fatalf("RuntimeFaults = %d, want 2", got)
	}
	if tp.Hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", tp.Hits.Load())
	}
	if task.KernelInstrumentationNS == 0 {
		t.Fatal("faulted hits charged no kernel time (mode switch at minimum)")
	}
}

func TestCompileFallbackMatchesInterpreter(t *testing.T) {
	t.Run(DeclineBackEdge, func(t *testing.T) {
		p := genMapsBuilder("jit/loop").
			Mov(R1, 4).
			Label("top").
			Sub(R1, 1).
			JneLoop(R1, 0, "top", 8).
			Mov(R0, 7).
			Exit().
			MustBuild()
		lp, err := Load(p, 0)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		info := lp.Compile()
		if info.Compiled || info.Reason != DeclineBackEdge {
			t.Fatalf("bounded loop not declined as back-edge: %+v", info)
		}
		assertCompiledAgreement(t, p, 3)
		k := kernel.New(sim.LargeHW, 1, 0)
		task := k.NewTask("jit")
		r0, _, rerr := lp.Run(task, nil)
		if rerr != nil || r0 != 7 {
			t.Fatalf("fallback run: r0=%d err=%v", r0, rerr)
		}
		st := lp.JITStats()
		if st.CompiledRuns != 0 || st.InterpRuns != 1 {
			t.Fatalf("declined program dispatched through JIT: %+v", st)
		}
	})

	t.Run(DeclineNoAnalysis, func(t *testing.T) {
		p := &Program{Name: "jit/no-analysis", Insns: []Insn{
			{Op: OpMovImm, Dst: R0, Imm: 9},
			{Op: OpExit},
		}}
		lp := &LoadedProgram{prog: p, ptrALU: make([]bool, len(p.Insns))}
		info := lp.Compile()
		if info.Compiled || info.Reason != DeclineNoAnalysis {
			t.Fatalf("analysis-less program not declined: %+v", info)
		}
		k := kernel.New(sim.LargeHW, 1, 0)
		r0, _, rerr := lp.Run(k.NewTask("t"), nil)
		if rerr != nil || r0 != 9 {
			t.Fatalf("fallback run: r0=%d err=%v", r0, rerr)
		}
	})

	t.Run(DeclineUnsupportedOpcode, func(t *testing.T) {
		cc := testCompiler(t)
		if _, reason := cc.buildInsn(0, Insn{Op: Op(250)}); reason != DeclineUnsupportedOpcode {
			t.Fatalf("reason %q, want %q", reason, DeclineUnsupportedOpcode)
		}
	})

	t.Run(DeclineUnprovenAccess, func(t *testing.T) {
		cc := testCompiler(t)
		// R5 is uninitialized at pc 0: no proof it points anywhere.
		if _, reason := cc.buildInsn(0, Insn{Op: OpLoad, Dst: R0, Src: R5}); reason != DeclineUnprovenAccess {
			t.Fatalf("load reason %q, want %q", reason, DeclineUnprovenAccess)
		}
		if _, reason := cc.buildInsn(0, Insn{Op: OpStore, Dst: R5, Src: R0}); reason != DeclineUnprovenAccess {
			t.Fatalf("store reason %q, want %q", reason, DeclineUnprovenAccess)
		}
	})

	t.Run(DeclineMalformed, func(t *testing.T) {
		p := &Program{Name: "jit/wild-jump", Insns: []Insn{
			{Op: OpJa, Off: 5},
			{Op: OpExit},
		}}
		lp := &LoadedProgram{prog: p, ptrALU: make([]bool, len(p.Insns)), analysis: &Analysis{}}
		if info := lp.Compile(); info.Compiled || info.Reason != DeclineMalformed {
			t.Fatalf("out-of-range jump not declined: %+v", info)
		}
	})
}

// testCompiler builds a compiler over a trivial verified program so decline
// paths can be probed instruction by instruction.
func testCompiler(t *testing.T) *compiler {
	t.Helper()
	p := &Program{Name: "jit/probe", Insns: []Insn{
		{Op: OpMovImm, Dst: R0, Imm: 1},
		{Op: OpExit},
	}}
	lp, err := Load(p, 0)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	cc := &compiler{lp: lp, p: p, a: lp.analysis}
	cc.fns = make([]copFn, len(p.Insns))
	if !cc.markTargets() {
		t.Fatal("markTargets failed on trivial program")
	}
	return cc
}

// TestCompileGeneratedProgramsAgree sweeps the constructive generator as an
// inline differential oracle (the always-on complement of FuzzOptimize's
// compiled mode) and requires that a healthy fraction of generated
// programs actually compile rather than all falling back.
func TestCompileGeneratedProgramsAgree(t *testing.T) {
	compiled := 0
	for seed := int64(1); seed <= 150; seed++ {
		p := GenProgram(seed, int(seed%40)+1)
		if err := Verify(p, fuzzMaxInsns); err != nil {
			t.Fatalf("seed %d: generated program rejected: %v", seed, err)
		}
		info := assertCompiledAgreement(t, p, seed)
		if info.Compiled {
			compiled++
		} else if info.Reason != DeclineBackEdge {
			t.Fatalf("seed %d: verified loop-free program declined (%q):\n%s",
				seed, info.Reason, p.Disassemble())
		}
	}
	t.Logf("compiled %d/150 generated programs", compiled)
	if compiled < 20 {
		t.Fatalf("only %d/150 generated programs compiled", compiled)
	}
}

func jitHighBitProgram() *Program {
	return genMapsBuilder("jit/high-bit").
		Mov(R1, 1).Lsh(R1, 63).Add(R1, 5).
		MovReg(R0, R1).
		Exit().
		MustBuild()
}

// Divergence found during development: the interpreter dispatches pointer
// arithmetic on the verifier's static kind, and an early JIT draft
// dispatched on the value's runtime tag bits instead — a scalar whose bit
// 63 is set would then take the pointer path and corrupt its low 32 bits.
func TestCompileRegression_ScalarHighBitALU(t *testing.T) {
	info := assertCompiledAgreement(t, jitHighBitProgram(), 1)
	if !info.Compiled {
		t.Fatalf("straight-line program declined: %+v", info)
	}
}

// Divergence found during development: div/mod are unsigned on the raw bit
// pattern and yield 0 on a zero divisor; a signed specialization (or one
// that panics on division by zero) diverges or crashes. The verifier
// statically rejects constant zero divisors, so the zero arrives through
// an out-of-range get_tracepoint_arg the verifier cannot bound.
func TestCompileRegression_DivModByZero(t *testing.T) {
	p := jitDivZeroProgram()
	if err := Verify(p, 0); err != nil {
		t.Fatalf("verify: %v", err)
	}
	info := assertCompiledAgreement(t, p, 1)
	if !info.Compiled {
		t.Fatalf("straight-line program declined: %+v", info)
	}
}

func jitDivZeroProgram() *Program {
	return &Program{Name: "jit/div-zero", Insns: []Insn{
		{Op: OpMovImm, Dst: R1, Imm: 99},
		{Op: OpCall, Imm: HelperGetArg}, // OOB index → R0 = 0 at runtime
		{Op: OpMovReg, Dst: R2, Src: R0},
		{Op: OpMovImm, Dst: R1, Imm: 10},
		{Op: OpDivReg, Dst: R1, Src: R2}, // 10/0 → 0
		{Op: OpMovImm, Dst: R3, Imm: -7},
		{Op: OpModReg, Dst: R3, Src: R2}, // -7%0 → 0
		{Op: OpMovImm, Dst: R4, Imm: -7},
		{Op: OpDivImm, Dst: R4, Imm: 2}, // unsigned: huge, not -3
		{Op: OpAddReg, Dst: R1, Src: R3},
		{Op: OpAddReg, Dst: R1, Src: R4},
		{Op: OpMovReg, Dst: R0, Src: R1},
		{Op: OpExit},
	}, Maps: NewGenMaps()}
}

// Divergence found during development: shift amounts mask to the low 6
// bits (68 shifts by 4), arithmetic right shift propagates the sign bit,
// and Neg wraps MinInt64 to itself — all must match evalALU bit-for-bit.
// Immediate shifts ≥64 are statically rejected, so the oversized amounts
// are computed at runtime from a tracepoint argument (args[3] = 4).
func TestCompileRegression_ShiftMaskingArshNeg(t *testing.T) {
	p := jitShiftMaskProgram()
	if err := Verify(p, 0); err != nil {
		t.Fatalf("verify: %v", err)
	}
	info := assertCompiledAgreement(t, p, 1)
	if !info.Compiled {
		t.Fatalf("straight-line program declined: %+v", info)
	}
}

func jitShiftMaskProgram() *Program {
	return &Program{Name: "jit/shift-mask", Insns: []Insn{
		{Op: OpMovImm, Dst: R1, Imm: 3},
		{Op: OpCall, Imm: HelperGetArg}, // R0 = args[3] = 4
		{Op: OpMovReg, Dst: R6, Src: R0},
		{Op: OpMulImm, Dst: R6, Imm: 17}, // 68
		{Op: OpMovReg, Dst: R7, Src: R0},
		{Op: OpMulImm, Dst: R7, Imm: 16},
		{Op: OpAddImm, Dst: R7, Imm: 1}, // 65
		{Op: OpMovImm, Dst: R1, Imm: 255},
		{Op: OpLshReg, Dst: R1, Src: R6}, // 68&63 = 4 → 0xFF0
		{Op: OpMovImm, Dst: R2, Imm: -8},
		{Op: OpArshReg, Dst: R2, Src: R7}, // 65&63 = 1 → -4
		{Op: OpAddReg, Dst: R1, Src: R2},
		{Op: OpMovImm, Dst: R3, Imm: math.MinInt64},
		{Op: OpNeg, Dst: R3}, // wraps to MinInt64
		{Op: OpAddReg, Dst: R1, Src: R3},
		{Op: OpMovReg, Dst: R0, Src: R1},
		{Op: OpExit},
	}, Maps: NewGenMaps()}
}

// Divergence found during development: conditional jumps compare unsigned,
// so jgt r1, -1 with r1=1 must fall through (1 > 0xFFFF…FFFF is false); a
// signed comparison takes the branch.
func jitUnsignedCompareProgram() *Program {
	return genMapsBuilder("jit/ucmp").
		Mov(R1, 1).
		Jgt(R1, -1, "big").
		Mov(R0, 5).
		Exit().
		Label("big").
		Mov(R0, 9).
		Exit().
		MustBuild()
}

func TestCompileRegression_UnsignedCompareNegImm(t *testing.T) {
	info := assertCompiledAgreement(t, jitUnsignedCompareProgram(), 1)
	if !info.Compiled {
		t.Fatalf("forward-branch program declined: %+v", info)
	}
}

// Divergence found during development: stack_pop writes its output buffer
// only on success; on failure R0=1 and the buffer keeps its prior bytes.
// A devirtualized pop that unconditionally copies diverges on the empty
// stack. Same program the optimizer pins (popFailureRegression).
func TestCompileRegression_StackPopFailure(t *testing.T) {
	p := popFailureRegression()
	info := assertCompiledAgreement(t, p, 1)
	if !info.Compiled {
		t.Fatalf("pop program declined: %+v", info)
	}
}

// Divergence found during development: every map lookup registers a fresh
// object id even for the same backing value, and the recorded trace (and
// any pointer stored to a map) exposes those ids. The compiled path must
// register objects in the same order as the interpreter, and two handles
// to one map value must alias.
func TestCompileRegression_MapLookupObjectIdentity(t *testing.T) {
	info := assertCompiledAgreement(t, jitLookupIdentityProgram(), 1)
	if !info.Compiled {
		t.Fatalf("lookup program declined: %+v", info)
	}
}

func jitLookupIdentityProgram() *Program {
	return genMapsBuilder("jit/lookup-identity").
		StoreImm(R10, -8, 42). // key
		StoreImm(R10, -24, 7). // value word 0
		StoreImm(R10, -16, 9). // value word 1
		LoadMapPtr(R1, genMapHash).
		MovReg(R2, R10).Sub(R2, 8).
		MovReg(R3, R10).Sub(R3, 24).
		Call(HelperMapUpdate).
		LoadMapPtr(R1, genMapHash).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperMapLookup). // first handle
		MovReg(R6, R0).
		Jeq(R6, 0, "miss").
		Load(R7, R6, 0). // read word 0 (7) through handle 1
		LoadMapPtr(R1, genMapHash).
		MovReg(R2, R10).Sub(R2, 8).
		Call(HelperMapLookup). // second handle, distinct object id
		MovReg(R8, R0).
		Jeq(R8, 0, "miss").
		Store(R8, 8, R7). // write word 1 through handle 2
		Load(R0, R6, 8).  // read it back through handle 1 (must alias)
		Exit().
		Label("miss").
		Mov(R0, 0).
		Exit().
		MustBuild()
}

var updateJITCorpus = flag.Bool("update-jit-corpus", false,
	"rewrite the pinned JIT regression corpus entries under testdata")

// jitRegressionCorpus maps each named interpreter-vs-JIT regression to its
// pinned FuzzOptimize corpus entry. The entries use raw mode (seed < 0:
// the byte payload is the wire-encoded program), so the exact
// divergence-triggering instruction sequences keep being revisited by the
// fuzzer even as the generator and mutator evolve.
func jitRegressionCorpus() map[string]*Program {
	return map[string]*Program{
		"seed-jit-high-bit":        jitHighBitProgram(),
		"seed-jit-div-zero":        jitDivZeroProgram(),
		"seed-jit-shift-mask":      jitShiftMaskProgram(),
		"seed-jit-ucmp":            jitUnsignedCompareProgram(),
		"seed-jit-lookup-identity": jitLookupIdentityProgram(),
	}
}

// TestCompileRegressionCorpusPinned keeps the checked-in corpus entries in
// lockstep with the regression programs above. Regenerate after editing a
// program with:
//
//	go test ./internal/bpf -run CorpusPinned -update-jit-corpus
func TestCompileRegressionCorpusPinned(t *testing.T) {
	for name, p := range jitRegressionCorpus() {
		path := filepath.Join("testdata", "fuzz", "FuzzOptimize", name)
		entry := fmt.Sprintf("go test fuzz v1\nint64(-1)\nbyte('\\x00')\n[]byte(%q)\n",
			EncodeInsns(p.Insns))
		if *updateJITCorpus {
			if err := os.WriteFile(path, []byte(entry), 0o644); err != nil {
				t.Fatalf("write %s: %v", path, err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update-jit-corpus)", path, err)
		}
		if string(got) != entry {
			t.Fatalf("%s is stale relative to its regression program; regenerate with -update-jit-corpus", path)
		}
	}
}

// TestCostRoundsHalfUp pins the cost() rounding fix: fractional
// per-instruction nanoseconds round half-up instead of truncating.
func TestCostRoundsHalfUp(t *testing.T) {
	cases := []struct {
		insns    int
		helperNS int64
		insnNS   float64
		want     int64
	}{
		{3, 0, 0.25, 1},     // 0.75 rounds up (was 0)
		{2, 0, 0.25, 1},     // exactly .5 rounds half-up
		{1, 0, 0.24, 0},     // 0.74 still truncates
		{100, 10, 0.25, 35}, // whole values unchanged
	}
	for _, c := range cases {
		if got := cost(c.insns, c.helperNS, c.insnNS); got != c.want {
			t.Fatalf("cost(%d, %d, %v) = %d, want %d", c.insns, c.helperNS, c.insnNS, got, c.want)
		}
	}
}
