package bpf

// evalALU is the single concrete ALU semantics shared by the VM
// interpreter, the verifier's constant reasoning, and the optimizer's
// constant folder — one definition so they can never diverge on the edge
// cases that have historically split static analyses from runtimes:
// division/modulo by zero yield 0 (BPF semantics), shift amounts are
// masked to the low 6 bits, and arithmetic right shift propagates the
// sign bit. a is the dst operand, b the src/imm operand (ignored by Neg).
func evalALU(op Op, a, b int64) int64 {
	switch op {
	case OpMovImm, OpMovReg:
		return b
	case OpAddImm, OpAddReg:
		return a + b
	case OpSubImm, OpSubReg:
		return a - b
	case OpMulImm, OpMulReg:
		return a * b
	case OpDivImm, OpDivReg:
		if b == 0 {
			return 0
		}
		return int64(uint64(a) / uint64(b))
	case OpModImm, OpModReg:
		if b == 0 {
			return 0
		}
		return int64(uint64(a) % uint64(b))
	case OpAndImm, OpAndReg:
		return a & b
	case OpOrImm, OpOrReg:
		return a | b
	case OpXorImm, OpXorReg:
		return a ^ b
	case OpLshImm, OpLshReg:
		return int64(uint64(a) << (uint64(b) & 63))
	case OpRshImm, OpRshReg:
		return int64(uint64(a) >> (uint64(b) & 63))
	case OpArshImm, OpArshReg:
		return a >> (uint64(b) & 63)
	case OpNeg:
		return -a
	}
	return 0
}
