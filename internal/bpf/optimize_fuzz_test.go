package bpf

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"tscout/internal/kernel"
	"tscout/internal/sim"
)

// This file holds the differential fuzz target for the optimizer (the
// constructive analogue of FuzzVerifyThenRun). The oracle: for any program
// the verifier accepts, Optimize must produce a program that (a) still
// verifies, (b) is no longer than the input, and (c) is observationally
// identical — same R0, same impure helper-call trace, same perf-ring
// contents, and same end-state in every map — when both run against
// identical fresh kernels, tasks, and maps.

// mapFingerprint renders a map's end-state canonically so two variants can
// be compared byte-for-byte. Ring buffers fold in their drain contents and
// submit/drop accounting; hash and per-task maps sort their keys.
func mapFingerprint(m Map) string {
	switch mm := m.(type) {
	case *HashMap:
		mm.mu.Lock()
		keys := make([]string, 0, len(mm.m))
		for k := range mm.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%x=%x;", k, mm.m[k])
		}
		mm.mu.Unlock()
		return "hash:" + b.String()
	case *ArrayMap:
		return fmt.Sprintf("array:%x", mm.values)
	case *StackMap:
		mm.mu.Lock()
		defer mm.mu.Unlock()
		return fmt.Sprintf("stack:%d:%x", mm.depth, mm.data[:mm.depth*mm.valueSize])
	case *PerTaskMap:
		snap := *mm.snap.Load()
		pids := make([]uint64, 0, len(snap))
		for pid := range snap {
			pids = append(pids, pid)
		}
		sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
		var b strings.Builder
		for _, pid := range pids {
			fmt.Fprintf(&b, "%d=%x;", pid, snap[pid])
		}
		return "pertask:" + b.String()
	case *PerfRingBuffer:
		st := mm.Stats()
		return fmt.Sprintf("ring:sub=%d,drop=%d:%x", st.Submitted, st.Dropped, mm.Drain(0))
	default:
		return fmt.Sprintf("unknown:%s", m.Name())
	}
}

// optVariantResult is one program execution observed in full.
type optVariantResult struct {
	r0     uint64
	cost   int64
	err    error
	trace  []HelperCall
	printk []uint64
	maps   []string
	info   CompileInfo
}

// runOptVariant runs insns against a fresh kernel, task, and map table so
// both sides of the differential comparison start from identical state.
func runOptVariant(name string, insns []Insn, seed int64) optVariantResult {
	return runExecVariant(name, insns, seed, false)
}

// runExecVariant is runOptVariant with an execution-engine choice: compile
// selects the JIT (falling back to the interpreter only if the compiler
// declines, recorded in the result's info).
func runExecVariant(name string, insns []Insn, seed int64, compile bool) optVariantResult {
	p := &Program{Name: name, Insns: insns, Maps: NewGenMaps()}
	lp, err := Load(p, fuzzMaxInsns)
	if err != nil {
		return optVariantResult{err: err}
	}
	var info CompileInfo
	if compile {
		info = lp.Compile()
	}
	lp.SetCallTrace(true)
	k := kernel.New(sim.LargeHW, seed, 0)
	task := k.NewTask("fuzz-opt")
	r0, cost, rerr := lp.Run(task, []uint64{1, 2, 3, 4})
	res := optVariantResult{r0: r0, cost: cost, err: rerr,
		trace: lp.CallTrace(), printk: lp.Printk(), info: info}
	for _, m := range p.Maps {
		res.maps = append(res.maps, mapFingerprint(m))
	}
	return res
}

// FuzzOptimize feeds generated (and optionally mutated) programs through
// Optimize and cross-checks the original against the optimized output.
func FuzzOptimize(f *testing.F) {
	f.Add(int64(1), uint8(10), []byte{})
	f.Add(int64(8), uint8(9), []byte{0, 0, 0, 0})
	f.Add(int64(42), uint8(30), []byte{})
	f.Add(int64(99), uint8(36), []byte{2, 7, 255, 255})
	f.Add(int64(141), uint8(39), []byte{})
	// Regression: store→failing-pop→load. stack_pop writes its buffer only
	// on success, so dead-store elimination must not treat the pop as a
	// strong kill of an aliasing earlier store (its value is R0 on the
	// failure path). Pinned via raw mode, which the generator+mutator path
	// cannot express exactly.
	f.Add(int64(-1), uint8(0), EncodeInsns(popFailureRegression().Insns))

	f.Fuzz(func(t *testing.T, seed int64, steps uint8, mut []byte) {
		var p *Program
		if seed < 0 {
			// Raw mode: mut is a wire-encoded program (EncodeInsns),
			// letting corpus entries pin exact regression programs.
			insns := DecodeInsns(mut)
			if len(insns) == 0 {
				return
			}
			p = &Program{Name: "fuzz/opt-raw", Insns: insns, Maps: NewGenMaps()}
			if Verify(p, fuzzMaxInsns) != nil {
				return // reject side is FuzzVerify's job
			}
		} else {
			p = GenProgram(seed, int(steps%40)+1)
			if len(mut) > 0 {
				mp := &Program{Name: "fuzz/opt-mut", Insns: MutateInsns(p.Insns, mut), Maps: NewGenMaps()}
				if len(mp.Insns) == 0 || Verify(mp, fuzzMaxInsns) != nil {
					return // reject side is FuzzVerifyThenRun's job
				}
				p = mp
			}
		}

		opt, stats, err := Optimize(p, fuzzMaxInsns)
		if err != nil {
			t.Fatalf("optimize rejected a verified program: %v\n%s", err, p.Disassemble())
		}
		if stats.BeforeInsns != len(p.Insns) || stats.AfterInsns != len(opt.Insns) {
			t.Fatalf("stats counts %d/%d disagree with programs %d/%d",
				stats.BeforeInsns, stats.AfterInsns, len(p.Insns), len(opt.Insns))
		}
		if stats.AfterInsns > stats.BeforeInsns {
			t.Fatalf("optimizer grew the program: %+v", stats)
		}
		if err := Verify(opt, fuzzMaxInsns); err != nil {
			t.Fatalf("optimized program does not verify: %v\noriginal:\n%s\noptimized:\n%s",
				err, p.Disassemble(), opt.Disassemble())
		}

		orig := runOptVariant("fuzz/opt-orig", p.Insns, seed)
		if orig.err != nil {
			if errors.Is(orig.err, ErrInsnBudget) && hasBackEdge(p) {
				return // lying LoopBound, accepted divergence (see fuzz_test.go)
			}
			t.Fatalf("verified original faulted: %v\n%s", orig.err, p.Disassemble())
		}
		after := runOptVariant("fuzz/opt-new", opt.Insns, seed)
		if after.err != nil {
			t.Fatalf("optimized program faulted: %v\noriginal:\n%s\noptimized:\n%s",
				after.err, p.Disassemble(), opt.Disassemble())
		}

		if orig.r0 != after.r0 {
			t.Fatalf("R0 diverged: original %d, optimized %d\noriginal:\n%s\noptimized:\n%s",
				orig.r0, after.r0, p.Disassemble(), opt.Disassemble())
		}
		if after.cost > orig.cost {
			t.Fatalf("optimized program costs more (%d > %d):\noriginal:\n%s\noptimized:\n%s",
				after.cost, orig.cost, p.Disassemble(), opt.Disassemble())
		}
		if !reflect.DeepEqual(orig.trace, after.trace) {
			t.Fatalf("impure helper traces diverged:\noriginal %v\noptimized %v\noriginal:\n%s\noptimized:\n%s",
				orig.trace, after.trace, p.Disassemble(), opt.Disassemble())
		}
		for i := range orig.maps {
			if orig.maps[i] != after.maps[i] {
				t.Fatalf("map %d end-state diverged:\noriginal  %s\noptimized %s\noriginal:\n%s\noptimized:\n%s",
					i, orig.maps[i], after.maps[i], p.Disassemble(), opt.Disassemble())
			}
		}

		// Compiled mode: the JIT must agree bit-exactly with the
		// interpreter on both the original and the optimized program.
		assertCompiledAgreement(t, p, seed)
		assertCompiledAgreement(t, opt, seed)
	})
}
