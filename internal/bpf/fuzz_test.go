package bpf

import (
	"errors"
	"regexp"
	"strconv"
	"testing"

	"tscout/internal/kernel"
	"tscout/internal/sim"
)

// This file holds the differential fuzz targets for the verifier/VM
// contract (paper §5.1). The oracle, in both directions:
//
//   verifier accepts  ⇒ the VM executes without a runtime fault, within
//                       the instruction budget (budget exhaustion is only
//                       legitimate for programs containing a back-edge,
//                       since the declared LoopBound is not enforced —
//                       see DESIGN.md "accepted divergences"), and with
//                       every stack/map access in bounds (a violation
//                       would surface as ErrRuntime or a panic);
//   verifier rejects  ⇒ the error names a real location: either a
//                       whole-program defect or "insn N: ..." with N a
//                       valid pc — and verification is deterministic.

// fuzzMaxInsns bounds fuzzed program length so each exec stays fast.
const fuzzMaxInsns = 1024

var insnPCRe = regexp.MustCompile(`insn (\d+):`)

// checkRejection asserts a verifier error blames a real pc.
func checkRejection(t *testing.T, p *Program, err error) {
	t.Helper()
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("verifier error does not wrap ErrVerification: %v", err)
	}
	m := insnPCRe.FindStringSubmatch(err.Error())
	if m == nil {
		// Whole-program rejections (empty, too long, non-convergence)
		// carry no pc; everything else must.
		return
	}
	pc, perr := strconv.Atoi(m[1])
	if perr != nil || pc < 0 || pc >= len(p.Insns) {
		t.Fatalf("rejection names pc %s outside program of %d insns: %v", m[1], len(p.Insns), err)
	}
}

// checkAcceptedRuns asserts the accept side of the oracle: the program
// must load and run without a runtime fault. ErrInsnBudget is tolerated
// only for programs with a back-edge (lying LoopBound declarations are an
// accepted divergence); ErrRuntime is always a verifier bug. It then runs
// the interpreter-vs-JIT differential: compiled execution (or the decline
// fallback) must agree bit-exactly on R0, cost, helper trace, printk, and
// map end-states.
func checkAcceptedRuns(t *testing.T, p *Program, seed int64) {
	t.Helper()
	lp, err := Load(p, fuzzMaxInsns)
	if err != nil {
		t.Fatalf("Verify accepted but Load rejected: %v", err)
	}
	k := kernel.New(sim.LargeHW, seed, 0)
	task := k.NewTask("fuzz")
	_, cost, rerr := lp.Run(task, []uint64{1, 2, 3, 4})
	switch {
	case rerr == nil:
		if cost < 0 {
			t.Fatalf("negative execution cost %d", cost)
		}
	case errors.Is(rerr, ErrInsnBudget):
		if !hasBackEdge(p) {
			t.Fatalf("budget exhausted without a back-edge (%d insns):\n%s", len(p.Insns), p.Disassemble())
		}
	default:
		t.Fatalf("verified program faulted: %v\n%s", rerr, p.Disassemble())
	}
	assertCompiledAgreement(t, p, seed)
}

// FuzzVerify feeds raw instruction streams (the 20-byte wire form of
// gen.go) straight into the verifier. Most decode to garbage the verifier
// must reject with a meaningful pc; streams it accepts must run cleanly.
func FuzzVerify(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeInsns([]Insn{{Op: OpMovImm, Dst: R0}, {Op: OpExit}}))
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(EncodeInsns(GenProgram(seed, 20).Insns))
	}
	// Historical near-misses: backward jump without bound, cond jump last,
	// store through scalar, read of uninitialized stack.
	f.Add(EncodeInsns([]Insn{{Op: OpJa, Off: -1}}))
	f.Add(EncodeInsns([]Insn{{Op: OpMovImm, Dst: R0}, {Op: OpJeqImm, Dst: R0}}))
	f.Add(EncodeInsns([]Insn{{Op: OpStore, Dst: R1, Src: R2}, {Op: OpExit}}))
	f.Add(EncodeInsns([]Insn{{Op: OpLoad, Dst: R0, Src: R10, Off: -8}, {Op: OpExit}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		insns := DecodeInsns(data)
		if len(insns) == 0 {
			return
		}
		p := &Program{Name: "fuzz/raw", Insns: insns, Maps: NewGenMaps()}
		err1 := Verify(p, fuzzMaxInsns)
		err2 := Verify(p, fuzzMaxInsns)
		if (err1 == nil) != (err2 == nil) ||
			(err1 != nil && err1.Error() != err2.Error()) {
			t.Fatalf("verifier nondeterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			checkRejection(t, p, err1)
			return
		}
		checkAcceptedRuns(t, p, 1)
	})
}

// FuzzVerifyThenRun is the constructive+destructive differential target:
// a seeded valid-by-construction program must always verify and run; a
// mutated variant exercises the reject side with near-valid inputs, which
// reach much deeper verifier states than raw byte noise.
func FuzzVerifyThenRun(f *testing.F) {
	f.Add(int64(1), uint8(10), []byte{})
	f.Add(int64(8), uint8(9), []byte{0, 0, 0, 0})
	f.Add(int64(42), uint8(30), []byte{2, 7, 255, 255, 7, 3, 0, 0})
	f.Add(int64(99), uint8(36), []byte{6, 1, 0, 0, 5, 2, 128, 0})

	f.Fuzz(func(t *testing.T, seed int64, steps uint8, mut []byte) {
		p := GenProgram(seed, int(steps%40)+1)
		if err := Verify(p, fuzzMaxInsns); err != nil {
			t.Fatalf("generated program rejected (generator or verifier bug): %v\n%s", err, p.Disassemble())
		}
		checkAcceptedRuns(t, p, seed)

		if len(mut) == 0 {
			return
		}
		mp := &Program{Name: "fuzz/mut", Insns: MutateInsns(p.Insns, mut), Maps: p.Maps}
		if len(mp.Insns) == 0 {
			return
		}
		if err := Verify(mp, fuzzMaxInsns); err != nil {
			checkRejection(t, mp, err)
			return
		}
		checkAcceptedRuns(t, mp, seed)
	})
}

// FuzzRingbuf differentially tests PerfRingBuffer against a trivial model
// queue: FIFO order, overwrite-oldest-on-full, and the accounting
// identity submitted == drained + dropped + pending at every step.
func FuzzRingbuf(f *testing.F) {
	f.Add(uint8(4), []byte{0x09, 0x11, 0x09, 0xFF, 0x00})
	f.Add(uint8(1), []byte{0x09, 0x09, 0x09, 0x11})
	f.Add(uint8(16), []byte{0x29, 0x31, 0x18, 0x02})

	f.Fuzz(func(t *testing.T, capacity uint8, ops []byte) {
		capV := int(capacity%32) + 1
		rb := NewPerfRingBuffer("fuzz/rb", capV)

		type model struct {
			queue     [][]byte
			submitted int64
			dropped   int64
			drained   int64
		}
		var m model
		next := byte(0)

		for _, op := range ops {
			switch op & 0x7 {
			case 0, 1, 2: // submit a tagged sample
				payload := []byte{next, byte(op >> 3)}
				next++
				rb.Submit(payload)
				m.submitted++
				if len(m.queue) == capV {
					m.queue = m.queue[1:] // overwrite oldest
					m.dropped++
				}
				m.queue = append(m.queue, payload)
			case 3, 4: // drain up to max samples
				max := int(op >> 3)
				got := rb.Drain(max)
				want := len(m.queue)
				if max > 0 && max < want {
					want = max
				}
				if len(got) != want {
					t.Fatalf("Drain(%d): got %d samples, model has %d", max, len(got), want)
				}
				for i, s := range got {
					w := m.queue[i]
					if len(s) != len(w) || s[0] != w[0] || s[1] != w[1] {
						t.Fatalf("Drain order: sample %d = %v, model %v", i, s, w)
					}
				}
				m.queue = m.queue[want:]
				m.drained += int64(want)
			case 5: // stats identity
				st := rb.Stats()
				if st.Submitted != m.submitted || st.Dropped != m.dropped ||
					st.Pending != len(m.queue) || st.Capacity != capV {
					t.Fatalf("stats %+v, model %+v pending %d", st, m, len(m.queue))
				}
				if st.Submitted != m.drained+st.Dropped+int64(st.Pending) {
					t.Fatalf("identity violated: %+v drained %d", st, m.drained)
				}
			case 6: // len
				if rb.Len() != len(m.queue) {
					t.Fatalf("Len %d, model %d", rb.Len(), len(m.queue))
				}
			case 7: // reset
				rb.Reset()
				m = model{}
			}
		}
		st := rb.Stats()
		if st.Submitted != m.drained+st.Dropped+int64(st.Pending) {
			t.Fatalf("final identity violated: %+v drained %d", st, m.drained)
		}
	})
}

// FuzzPerCPURing differentially tests PerCPURing against one model queue
// per CPU: submissions route by CPU (with wrap-around for out-of-range
// values), each ring is an independent FIFO with overwrite-oldest-on-full,
// and both the per-ring and the aggregate accounting identities
// submitted == drained + dropped + pending hold at every step.
func FuzzPerCPURing(f *testing.F) {
	f.Add(uint8(3), uint8(4), []byte{0x09, 0x51, 0x0B, 0xFF, 0x00})
	f.Add(uint8(1), uint8(1), []byte{0x09, 0x09, 0x0B, 0x15})
	f.Add(uint8(8), uint8(2), []byte{0x29, 0x71, 0x1B, 0x02, 0x05})

	f.Fuzz(func(t *testing.T, numCPUs, capacity uint8, ops []byte) {
		cpus := int(numCPUs%8) + 1
		capV := int(capacity%16) + 1
		r := NewPerCPURing("fuzz/percpu", cpus, capV)

		type model struct {
			queue     [][]byte
			submitted int64
			dropped   int64
			drained   int64
		}
		ms := make([]model, cpus)
		next := byte(0)
		var batch Batch

		for _, op := range ops {
			cpu := int(op>>3) % cpus
			switch op & 0x7 {
			case 0, 1: // submit a tagged sample from cpu
				payload := []byte{next, byte(op)}
				next++
				r.SubmitFrom(int(op>>3), payload) // ring wraps out-of-range itself
				m := &ms[cpu]
				m.submitted++
				if len(m.queue) == capV {
					m.queue = m.queue[1:]
					m.dropped++
				}
				m.queue = append(m.queue, payload)
			case 2: // legacy Submit routes to cpu 0
				payload := []byte{next, 0xEE}
				next++
				r.Submit(payload)
				m := &ms[0]
				m.submitted++
				if len(m.queue) == capV {
					m.queue = m.queue[1:]
					m.dropped++
				}
				m.queue = append(m.queue, payload)
			case 3, 4: // drain one ring into a reused batch
				max := cpu + 1 // reuse the routed cpu as a small max
				batch.Reset()
				n := r.DrainBatch(cpu, &batch, max)
				m := &ms[cpu]
				want := len(m.queue)
				if max < want {
					want = max
				}
				if n != batch.Len() || n != want {
					t.Fatalf("DrainBatch(cpu %d, max %d): n=%d batch=%d, model %d", cpu, max, n, batch.Len(), want)
				}
				for i := 0; i < n; i++ {
					s, w := batch.Sample(i), m.queue[i]
					if len(s) != len(w) || s[0] != w[0] || s[1] != w[1] {
						t.Fatalf("cpu %d drain order: sample %d = %v, model %v", cpu, i, s, w)
					}
				}
				m.queue = m.queue[want:]
				m.drained += int64(want)
			case 5: // per-ring and aggregate stats identities
				var aggSub, aggDrop, aggDrained int64
				var aggPending int
				for c := 0; c < cpus; c++ {
					st := r.RingStats(c)
					m := &ms[c]
					if st.Submitted != m.submitted || st.Dropped != m.dropped ||
						st.Drained != m.drained || st.Pending != len(m.queue) {
						t.Fatalf("cpu %d stats %+v, model %+v pending %d", c, st, m, len(m.queue))
					}
					if st.Submitted != st.Drained+st.Dropped+int64(st.Pending) {
						t.Fatalf("cpu %d identity violated: %+v", c, st)
					}
					aggSub += st.Submitted
					aggDrop += st.Dropped
					aggDrained += st.Drained
					aggPending += st.Pending
				}
				agg := r.Stats()
				if agg.Submitted != aggSub || agg.Dropped != aggDrop ||
					agg.Drained != aggDrained || agg.Pending != aggPending ||
					agg.Capacity != cpus*capV {
					t.Fatalf("aggregate stats %+v, summed {%d %d %d %d}", agg, aggSub, aggDrop, aggDrained, aggPending)
				}
			case 6: // len
				total := 0
				for c := range ms {
					total += len(ms[c].queue)
				}
				if r.Len() != total {
					t.Fatalf("Len %d, model %d", r.Len(), total)
				}
			case 7: // reset
				r.Reset()
				for c := range ms {
					ms[c] = model{}
				}
			}
		}
		st := r.Stats()
		var mDrained int64
		for c := range ms {
			mDrained += ms[c].drained
		}
		if st.Submitted != mDrained+st.Dropped+int64(st.Pending) {
			t.Fatalf("final aggregate identity violated: %+v drained %d", st, mDrained)
		}
	})
}
