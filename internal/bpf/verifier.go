package bpf

import (
	"errors"
	"fmt"
)

// ErrVerification wraps all verifier rejections.
var ErrVerification = errors.New("bpf: verification failed")

func verr(pc int, format string, args ...any) error {
	return fmt.Errorf("%w: insn %d: %s", ErrVerification, pc, fmt.Sprintf(format, args...))
}

// The verifier performs abstract interpretation over the program's CFG,
// mirroring the guarantees the paper leans on (§2.3, §5.1): bounded length,
// no unreachable instructions, loops only with compile-time bounds, no
// dynamic allocation outside maps, pointer access restricted to a safe API
// (in-bounds stack and map-value memory, null-checked map lookups), and
// helper calls checked against typed signatures.

type regKind uint8

const (
	rkUninit regKind = iota
	rkScalar
	rkPtrStack
	rkPtrMapValue
	rkPtrMapValueOrNull
	rkConstMap
)

func (k regKind) String() string {
	switch k {
	case rkUninit:
		return "uninit"
	case rkScalar:
		return "scalar"
	case rkPtrStack:
		return "stack-ptr"
	case rkPtrMapValue:
		return "map-value-ptr"
	case rkPtrMapValueOrNull:
		return "map-value-or-null"
	case rkConstMap:
		return "map-handle"
	}
	return "?"
}

type regState struct {
	kind   regKind
	mapIdx int32
	off    int64 // stack: offset rel. R10 (<=0); map value: offset into value
	known  bool  // scalar constant known
	val    int64
}

type absState struct {
	regs      [numRegs]regState
	stackInit [StackSize]bool
	valid     bool
}

func entryState() absState {
	var s absState
	s.valid = true
	s.regs[R10] = regState{kind: rkPtrStack, off: 0}
	return s
}

func joinReg(a, b regState) regState {
	if a.kind != b.kind || a.mapIdx != b.mapIdx || (a.kind != rkScalar && a.off != b.off) {
		if a.kind != b.kind || a.mapIdx != b.mapIdx {
			return regState{kind: rkUninit}
		}
		return regState{kind: rkUninit}
	}
	out := a
	if a.kind == rkScalar {
		if !a.known || !b.known || a.val != b.val {
			out.known = false
			out.val = 0
		}
	}
	return out
}

// join merges b into a, reporting whether a changed.
func (a *absState) join(b *absState) bool {
	if !a.valid {
		*a = *b
		return true
	}
	changed := false
	for i := range a.regs {
		merged := joinReg(a.regs[i], b.regs[i])
		if merged != a.regs[i] {
			a.regs[i] = merged
			changed = true
		}
	}
	for i := range a.stackInit {
		if a.stackInit[i] && !b.stackInit[i] {
			a.stackInit[i] = false
			changed = true
		}
	}
	return changed
}

// Verify statically checks a program. maxInsns of 0 uses DefaultMaxInsns.
func Verify(p *Program, maxInsns int) error {
	if maxInsns <= 0 {
		maxInsns = DefaultMaxInsns
	}
	n := len(p.Insns)
	if n == 0 {
		return fmt.Errorf("%w: empty program", ErrVerification)
	}
	if n > maxInsns {
		return fmt.Errorf("%w: program has %d instructions, limit %d", ErrVerification, n, maxInsns)
	}

	// Structural pass: opcode validity, jump targets, loop bounds.
	for pc, in := range p.Insns {
		if in.Op == OpInvalid || opNames[in.Op] == "" {
			return verr(pc, "invalid opcode %d", in.Op)
		}
		if in.Dst >= numRegs || in.Src >= numRegs {
			return verr(pc, "register out of range")
		}
		if isJump(in.Op) {
			tgt := pc + 1 + int(in.Off)
			if tgt < 0 || tgt >= n {
				return verr(pc, "jump target %d out of range", tgt)
			}
			if tgt <= pc && in.LoopBound <= 0 {
				return verr(pc, "backward jump without a compile-time loop bound")
			}
		}
		switch in.Op {
		case OpDivImm, OpModImm:
			if in.Imm == 0 {
				return verr(pc, "division by constant zero")
			}
		case OpLshImm, OpRshImm:
			if in.Imm < 0 || in.Imm >= 64 {
				return verr(pc, "shift amount %d out of range", in.Imm)
			}
		case OpLoadMapPtr:
			if in.Imm < 0 || in.Imm >= int64(len(p.Maps)) {
				return verr(pc, "map index %d out of range (have %d maps)", in.Imm, len(p.Maps))
			}
		case OpCall:
			if _, ok := HelperByID(in.Imm); !ok {
				return verr(pc, "unknown helper %d", in.Imm)
			}
		}
		// Fall-through off the end of the program.
		if pc == n-1 && in.Op != OpExit && in.Op != OpJa {
			return verr(pc, "control flow falls off the end of the program")
		}
		if isCondJump(in.Op) && pc == n-1 {
			return verr(pc, "conditional jump cannot be the last instruction")
		}
	}

	// Reachability from instruction 0.
	reach := make([]bool, n)
	stack := []int{0}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[pc] {
			continue
		}
		reach[pc] = true
		in := p.Insns[pc]
		switch {
		case in.Op == OpExit:
		case in.Op == OpJa:
			stack = append(stack, pc+1+int(in.Off))
		case isCondJump(in.Op):
			stack = append(stack, pc+1, pc+1+int(in.Off))
		default:
			stack = append(stack, pc+1)
		}
	}
	for pc := range reach {
		if !reach[pc] {
			return verr(pc, "unreachable instruction")
		}
	}

	// Abstract interpretation to a fixpoint.
	states := make([]absState, n)
	states[0] = entryState()
	work := []int{0}
	steps := 0
	for len(work) > 0 {
		steps++
		if steps > n*64 {
			return fmt.Errorf("%w: abstract interpretation did not converge", ErrVerification)
		}
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		outs, err := step(p, pc, states[pc])
		if err != nil {
			return err
		}
		for _, o := range outs {
			if states[o.pc].join(&o.state) {
				work = append(work, o.pc)
			}
		}
	}
	return nil
}

type succ struct {
	pc    int
	state absState
}

func requireInit(pc int, s *absState, r Reg, what string) error {
	if s.regs[r].kind == rkUninit {
		return verr(pc, "%s uses uninitialized r%d", what, r)
	}
	return nil
}

func checkStackAccess(pc int, s *absState, base regState, off int32, size int, write bool) error {
	a := base.off + int64(off)
	if a < -StackSize || a+int64(size) > 0 {
		return verr(pc, "stack access at offset %d size %d out of bounds", a, size)
	}
	idx := int(a + StackSize)
	if write {
		for i := 0; i < size; i++ {
			s.stackInit[idx+i] = true
		}
		return nil
	}
	for i := 0; i < size; i++ {
		if !s.stackInit[idx+i] {
			return verr(pc, "read of uninitialized stack byte at offset %d", a+int64(i))
		}
	}
	return nil
}

func checkMapValueAccess(p *Program, pc int, base regState, off int32, size int) error {
	if base.kind == rkPtrMapValueOrNull {
		return verr(pc, "possibly-NULL map value dereference (missing null check)")
	}
	vs := int64(p.Maps[base.mapIdx].ValueSize())
	a := base.off + int64(off)
	if a < 0 || a+int64(size) > vs {
		return verr(pc, "map value access at offset %d size %d outside value size %d", a, size, vs)
	}
	return nil
}

func step(p *Program, pc int, in absState) ([]succ, error) {
	s := in
	insn := p.Insns[pc]
	next := func() []succ { return []succ{{pc + 1, s}} }

	switch {
	case insn.Op == OpExit:
		if s.regs[R0].kind != rkScalar {
			return nil, verr(pc, "exit with R0 %s (must be scalar)", s.regs[R0].kind)
		}
		return nil, nil

	case insn.Op == OpMovImm:
		if insn.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		s.regs[insn.Dst] = regState{kind: rkScalar, known: true, val: insn.Imm}
		return next(), nil

	case insn.Op == OpMovReg:
		if insn.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		if err := requireInit(pc, &s, insn.Src, "mov"); err != nil {
			return nil, err
		}
		s.regs[insn.Dst] = s.regs[insn.Src]
		return next(), nil

	case insn.Op == OpNeg:
		if insn.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		if err := requireInit(pc, &s, insn.Dst, "neg"); err != nil {
			return nil, err
		}
		if s.regs[insn.Dst].kind != rkScalar {
			return nil, verr(pc, "neg on %s", s.regs[insn.Dst].kind)
		}
		r := s.regs[insn.Dst]
		if r.known {
			r.val = -r.val
		}
		s.regs[insn.Dst] = r
		return next(), nil

	case isALU(insn.Op):
		if insn.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		if err := requireInit(pc, &s, insn.Dst, "alu"); err != nil {
			return nil, err
		}
		var src regState
		if isRegSrc(insn.Op) {
			if err := requireInit(pc, &s, insn.Src, "alu"); err != nil {
				return nil, err
			}
			src = s.regs[insn.Src]
		} else {
			src = regState{kind: rkScalar, known: true, val: insn.Imm}
		}
		dst := s.regs[insn.Dst]
		// Pointer arithmetic: only ptr +/- known scalar.
		if dst.kind == rkPtrStack || dst.kind == rkPtrMapValue {
			switch insn.Op {
			case OpAddImm, OpAddReg, OpSubImm, OpSubReg:
				if src.kind != rkScalar || !src.known {
					return nil, verr(pc, "pointer arithmetic with unknown scalar")
				}
				d := src.val
				if insn.Op == OpSubImm || insn.Op == OpSubReg {
					d = -d
				}
				dst.off += d
				s.regs[insn.Dst] = dst
				return next(), nil
			default:
				return nil, verr(pc, "forbidden ALU op on pointer")
			}
		}
		if dst.kind != rkScalar {
			return nil, verr(pc, "alu on %s", dst.kind)
		}
		if src.kind != rkScalar {
			return nil, verr(pc, "alu with %s source", src.kind)
		}
		if (insn.Op == OpDivReg || insn.Op == OpModReg) && src.known && src.val == 0 {
			return nil, verr(pc, "division by known-zero register")
		}
		out := regState{kind: rkScalar}
		if dst.known && src.known {
			out.known = true
			out.val = evalALU(insn.Op, dst.val, src.val)
		}
		s.regs[insn.Dst] = out
		return next(), nil

	case insn.Op == OpLoadMapPtr:
		if insn.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		s.regs[insn.Dst] = regState{kind: rkConstMap, mapIdx: int32(insn.Imm)}
		return next(), nil

	case insn.Op == OpLoad:
		if insn.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		base := s.regs[insn.Src]
		switch base.kind {
		case rkPtrStack:
			if err := checkStackAccess(pc, &s, base, insn.Off, 8, false); err != nil {
				return nil, err
			}
		case rkPtrMapValue, rkPtrMapValueOrNull:
			if err := checkMapValueAccess(p, pc, base, insn.Off, 8); err != nil {
				return nil, err
			}
		default:
			return nil, verr(pc, "load through %s", base.kind)
		}
		s.regs[insn.Dst] = regState{kind: rkScalar}
		return next(), nil

	case insn.Op == OpStore, insn.Op == OpStoreImm:
		base := s.regs[insn.Dst]
		if insn.Op == OpStore {
			if err := requireInit(pc, &s, insn.Src, "store"); err != nil {
				return nil, err
			}
			if s.regs[insn.Src].kind != rkScalar {
				return nil, verr(pc, "storing %s to memory (pointer leak)", s.regs[insn.Src].kind)
			}
		}
		switch base.kind {
		case rkPtrStack:
			if err := checkStackAccess(pc, &s, base, insn.Off, 8, true); err != nil {
				return nil, err
			}
		case rkPtrMapValue, rkPtrMapValueOrNull:
			if err := checkMapValueAccess(p, pc, base, insn.Off, 8); err != nil {
				return nil, err
			}
		default:
			return nil, verr(pc, "store through %s", base.kind)
		}
		return next(), nil

	case insn.Op == OpJa:
		return []succ{{pc + 1 + int(insn.Off), s}}, nil

	case isCondJump(insn.Op):
		if err := requireInit(pc, &s, insn.Dst, "jump"); err != nil {
			return nil, err
		}
		if isRegSrc(insn.Op) {
			if err := requireInit(pc, &s, insn.Src, "jump"); err != nil {
				return nil, err
			}
			if s.regs[insn.Src].kind != rkScalar || s.regs[insn.Dst].kind != rkScalar {
				return nil, verr(pc, "register compare on non-scalars")
			}
		}
		taken := s
		fall := s
		d := s.regs[insn.Dst]
		// Null-check refinement for map-lookup results.
		if d.kind == rkPtrMapValueOrNull && !isRegSrc(insn.Op) && insn.Imm == 0 {
			switch insn.Op {
			case OpJeqImm: // taken => ptr == 0 => NULL; fallthrough => non-null
				taken.regs[insn.Dst] = regState{kind: rkScalar, known: true, val: 0}
				fall.regs[insn.Dst] = regState{kind: rkPtrMapValue, mapIdx: d.mapIdx, off: d.off}
			case OpJneImm: // taken => non-null
				taken.regs[insn.Dst] = regState{kind: rkPtrMapValue, mapIdx: d.mapIdx, off: d.off}
				fall.regs[insn.Dst] = regState{kind: rkScalar, known: true, val: 0}
			default:
				return nil, verr(pc, "map value pointer compared with non-equality op before null check")
			}
		} else if d.kind != rkScalar {
			return nil, verr(pc, "conditional jump on %s", d.kind)
		}
		return []succ{{pc + 1 + int(insn.Off), taken}, {pc + 1, fall}}, nil

	case insn.Op == OpCall:
		spec, _ := HelperByID(insn.Imm)
		argRegs := []Reg{R1, R2, R3, R4, R5}
		var constMap int32 = -1
		var sizedPtr regState
		sizedPtrSeen := false
		for i, kind := range spec.Args {
			r := argRegs[i]
			if err := requireInit(pc, &s, r, spec.Name); err != nil {
				return nil, err
			}
			a := s.regs[r]
			switch kind {
			case ArgScalar:
				if a.kind != rkScalar {
					return nil, verr(pc, "%s arg %d must be scalar, got %s", spec.Name, i+1, a.kind)
				}
			case ArgConstMap:
				if a.kind != rkConstMap {
					return nil, verr(pc, "%s arg %d must be a map handle, got %s", spec.Name, i+1, a.kind)
				}
				constMap = a.mapIdx
				// Helper/map-type compatibility, checked statically like
				// real eBPF: the runtime type assertions in vm.go must be
				// unreachable for verified programs. (Found by FuzzVerify:
				// stack_pop on a hash map verified, then faulted.)
				switch insn.Imm {
				case HelperStackPush, HelperStackPop:
					if _, ok := p.Maps[constMap].(*StackMap); !ok {
						return nil, verr(pc, "%s arg %d must be a stack map, got %q", spec.Name, i+1, p.Maps[constMap].Name())
					}
				case HelperPerfOutput:
					if _, ok := p.Maps[constMap].(*PerfRingBuffer); !ok {
						return nil, verr(pc, "%s arg %d must be a perf ring buffer, got %q", spec.Name, i+1, p.Maps[constMap].Name())
					}
				}
			case ArgPtrKey, ArgPtrValue:
				if constMap < 0 {
					return nil, verr(pc, "%s arg %d: no preceding map handle", spec.Name, i+1)
				}
				size := p.Maps[constMap].KeySize()
				if kind == ArgPtrValue {
					size = p.Maps[constMap].ValueSize()
				}
				if size == 0 {
					break // keyless map; argument ignored
				}
				if a.kind != rkPtrStack {
					return nil, verr(pc, "%s arg %d must be a stack pointer, got %s", spec.Name, i+1, a.kind)
				}
				// Map update/push read the buffer; pop writes it. Treat
				// all as requiring bounds; reads additionally require
				// initialized bytes, and helpers may write, so mark
				// initialized afterwards.
				write := insn.Imm == HelperStackPop
				if err := checkStackAccess(pc, &s, a, 0, size, write); err != nil {
					return nil, err
				}
				if !write {
					if err := checkStackAccess(pc, &s, a, 0, size, false); err != nil {
						return nil, err
					}
				} else {
					// already marked initialized by the write check
					_ = write
				}
			case ArgPtrSized:
				if a.kind != rkPtrStack {
					return nil, verr(pc, "%s arg %d must be a stack pointer, got %s", spec.Name, i+1, a.kind)
				}
				sizedPtr = a
				sizedPtrSeen = true
			case ArgSizeConst:
				if a.kind != rkScalar || !a.known || a.val <= 0 {
					return nil, verr(pc, "%s arg %d must be a known positive constant size", spec.Name, i+1)
				}
				if !sizedPtrSeen {
					return nil, verr(pc, "%s arg %d: size without preceding pointer", spec.Name, i+1)
				}
				if err := checkStackAccess(pc, &s, sizedPtr, 0, int(a.val), false); err != nil {
					return nil, err
				}
			}
		}
		// Helper calls clobber caller-saved registers.
		for _, r := range argRegs {
			s.regs[r] = regState{kind: rkUninit}
		}
		switch spec.Ret {
		case RetMapValueOrNull:
			if constMap < 0 {
				return nil, verr(pc, "%s returns map value but has no map arg", spec.Name)
			}
			s.regs[R0] = regState{kind: rkPtrMapValueOrNull, mapIdx: constMap}
		default:
			s.regs[R0] = regState{kind: rkScalar}
		}
		return next(), nil
	}
	return nil, verr(pc, "unhandled opcode %v", insn.Op)
}

func evalALU(op Op, a, b int64) int64 {
	switch op {
	case OpAddImm, OpAddReg:
		return a + b
	case OpSubImm, OpSubReg:
		return a - b
	case OpMulImm, OpMulReg:
		return a * b
	case OpDivImm, OpDivReg:
		if b == 0 {
			return 0
		}
		return int64(uint64(a) / uint64(b))
	case OpModImm, OpModReg:
		if b == 0 {
			return 0
		}
		return int64(uint64(a) % uint64(b))
	case OpAndImm, OpAndReg:
		return a & b
	case OpOrImm, OpOrReg:
		return a | b
	case OpXorImm, OpXorReg:
		return a ^ b
	case OpLshImm, OpLshReg:
		return int64(uint64(a) << (uint64(b) & 63))
	case OpRshImm, OpRshReg:
		return int64(uint64(a) >> (uint64(b) & 63))
	}
	return 0
}
