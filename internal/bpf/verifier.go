package bpf

import (
	"errors"
	"fmt"
	"math"
)

// ErrVerification wraps all verifier rejections.
var ErrVerification = errors.New("bpf: verification failed")

// VerifyError is a rejection tied to a specific instruction; tools (tsctl
// vet, codegen error reporting) extract the failing pc via errors.As.
type VerifyError struct {
	PC  int
	Msg string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("bpf: verification failed: insn %d: %s", e.PC, e.Msg)
}

func (e *VerifyError) Unwrap() error { return ErrVerification }

func verr(pc int, format string, args ...any) error {
	return &VerifyError{PC: pc, Msg: fmt.Sprintf(format, args...)}
}

// The verifier performs abstract interpretation over the program's CFG,
// mirroring the guarantees the paper leans on (§2.3, §5.1): bounded length,
// no unreachable instructions, loops only with compile-time bounds, no
// dynamic allocation outside maps, pointer access restricted to a safe API
// (in-bounds stack and map-value memory, null-checked map lookups), and
// helper calls checked against typed signatures.
//
// Each register carries a kind (the pointer lattice below) and, for
// scalars, a VReg product value (interval × tnum, domain.go); pointers
// carry an offset *range* [lo, hi] instead of a single offset, so
// register-offset accesses verify whenever every offset in the range is in
// bounds. Conditional edges are refined with vrRefine and pruned when
// provably infeasible.

type regKind uint8

const (
	rkUninit regKind = iota
	rkScalar
	rkPtrStack
	rkPtrMapValue
	rkPtrMapValueOrNull
	rkConstMap
)

func (k regKind) String() string {
	switch k {
	case rkUninit:
		return "uninit"
	case rkScalar:
		return "scalar"
	case rkPtrStack:
		return "stack-ptr"
	case rkPtrMapValue:
		return "map-value-ptr"
	case rkPtrMapValueOrNull:
		return "map-value-or-null"
	case rkConstMap:
		return "map-handle"
	}
	return "?"
}

// offWindow bounds the pointer offsets an access check will even
// consider. Tracked offsets themselves are exact int64s (matching the
// VM's wrapping arithmetic modulo 2^32 — exactness is what keeps the two
// in sync); the window guard exists so the checks below can add off and
// size without risking int64 overflow on extreme tracked bounds.
const offWindow = int64(1) << 32

type regState struct {
	kind   regKind
	mapIdx int32
	lo, hi int64 // pointer offset bounds (stack: rel. R10; map value: into value)
	vr     VReg  // scalar value, meaningful only when kind == rkScalar
}

func scalarReg(v VReg) regState  { return regState{kind: rkScalar, vr: v} }
func constReg(v int64) regState  { return scalarReg(vrConst(uint64(v))) }
func unknownScalarReg() regState { return scalarReg(vrTop()) }

type absState struct {
	regs      [numRegs]regState
	stackInit [StackSize]bool
	valid     bool
}

func entryState() absState {
	var s absState
	s.valid = true
	s.regs[R10] = regState{kind: rkPtrStack}
	return s
}

func joinReg(a, b regState) regState {
	if a.kind != b.kind || a.mapIdx != b.mapIdx {
		return regState{kind: rkUninit}
	}
	switch a.kind {
	case rkScalar:
		a.vr = vrJoin(a.vr, b.vr)
	case rkPtrStack, rkPtrMapValue, rkPtrMapValueOrNull:
		if b.lo < a.lo {
			a.lo = b.lo
		}
		if b.hi > a.hi {
			a.hi = b.hi
		}
	}
	return a
}

// widenReg is joinReg with acceleration: any bound that still moves at a
// loop head jumps straight to its extreme so fixpoints terminate.
func widenReg(a, b regState) regState {
	if a.kind != b.kind || a.mapIdx != b.mapIdx {
		return regState{kind: rkUninit}
	}
	switch a.kind {
	case rkScalar:
		a.vr = vrWiden(a.vr, b.vr)
	case rkPtrStack, rkPtrMapValue, rkPtrMapValueOrNull:
		if b.lo < a.lo {
			a.lo = math.MinInt64
		}
		if b.hi > a.hi {
			a.hi = math.MaxInt64
		}
	}
	return a
}

// merge joins b into a (with widening when widen is set), reporting
// whether a changed.
func (a *absState) merge(b *absState, widen bool) bool {
	if !a.valid {
		*a = *b
		return true
	}
	changed := false
	for i := range a.regs {
		var merged regState
		if widen {
			merged = widenReg(a.regs[i], b.regs[i])
		} else {
			merged = joinReg(a.regs[i], b.regs[i])
		}
		if merged != a.regs[i] {
			a.regs[i] = merged
			changed = true
		}
	}
	for i := range a.stackInit {
		if a.stackInit[i] && !b.stackInit[i] {
			a.stackInit[i] = false
			changed = true
		}
	}
	return changed
}

type succ struct {
	pc    int
	state absState
}

func requireInit(pc int, s *absState, r Reg, what string) error {
	if s.regs[r].kind == rkUninit {
		return verr(pc, "%s uses uninitialized r%d", what, r)
	}
	return nil
}

// addOff adds delta bounds [dlo, dhi] to offset bounds [lo, hi] exactly.
// Any int64 overflow poisons the bounds to the full range: a poisoned
// pointer fails every access-window check, and the full range is
// absorbing under further addOff calls (one endpoint stays extreme), so
// exactness — and with it agreement with the VM's wrapping arithmetic —
// is only ever given up on pointers that can never be dereferenced.
func addOff(lo, hi, dlo, dhi int64) (int64, int64) {
	nlo := lo + dlo
	nhi := hi + dhi
	if (dlo > 0 && nlo < lo) || (dlo < 0 && nlo > lo) ||
		(dhi > 0 && nhi < hi) || (dhi < 0 && nhi > hi) {
		return math.MinInt64, math.MaxInt64
	}
	return nlo, nhi
}

// signedBounds reinterprets an unsigned VReg as signed bounds. ok is
// false when the range straddles the signed boundary (the value's sign is
// unknown), in which case no signed bounds exist.
func signedBounds(v VReg) (lo, hi int64, ok bool) {
	const sign = uint64(1) << 63
	if v.Hi < sign || v.Lo >= sign {
		return int64(v.Lo), int64(v.Hi), true
	}
	return 0, 0, false
}

// stackAccess selects checkStackRange's semantics for the access.
type stackAccess uint8

const (
	// stackRead requires every possibly-touched byte initialized.
	stackRead stackAccess = iota
	// stackWrite marks bytes initialized, but only when the address is
	// exact (a weak update would be unsound to treat as initializing).
	stackWrite
	// stackCondWrite is a write that may not happen at runtime (e.g.
	// stack_pop fills its buffer only on success): bounds-check only,
	// neither requiring nor providing initialization.
	stackCondWrite
)

// checkStackRange validates an access of size bytes through base (a stack
// pointer with offset range [lo,hi]) plus the static offset off, with
// read/write/conditional-write semantics per mode.
func checkStackRange(pc int, s *absState, base regState, off int32, size int, mode stackAccess) error {
	if base.lo < -offWindow || base.hi > offWindow {
		return verr(pc, "stack access at offset %d size %d out of bounds", base.lo, size)
	}
	lo := base.lo + int64(off)
	hi := base.hi + int64(off)
	if lo < -StackSize || hi+int64(size) > 0 {
		return verr(pc, "stack access at offset %d size %d out of bounds", lo, size)
	}
	switch mode {
	case stackWrite:
		if base.lo == base.hi {
			idx := int(lo + StackSize)
			for i := 0; i < size; i++ {
				s.stackInit[idx+i] = true
			}
		}
		return nil
	case stackCondWrite:
		return nil
	}
	for a := lo; a < hi+int64(size); a++ {
		if !s.stackInit[a+StackSize] {
			return verr(pc, "read of uninitialized stack byte at offset %d", a)
		}
	}
	return nil
}

func checkMapValueAccess(p *Program, pc int, base regState, off int32, size int) error {
	if base.kind == rkPtrMapValueOrNull {
		return verr(pc, "possibly-NULL map value dereference (missing null check)")
	}
	vs := int64(p.Maps[base.mapIdx].ValueSize())
	if base.lo < -offWindow || base.hi > offWindow {
		return verr(pc, "map value access at offset %d size %d outside value size %d", base.lo, size, vs)
	}
	lo := base.lo + int64(off)
	hi := base.hi + int64(off)
	if lo < 0 || hi+int64(size) > vs {
		return verr(pc, "map value access at offset %d size %d outside value size %d", lo, size, vs)
	}
	return nil
}

// condStates computes the refined taken/fall-through states of a
// conditional jump and whether each edge is feasible. Callers have
// already checked register initialization.
func condStates(s absState, insn Insn) (taken, fall absState, feasT, feasF bool, err error) {
	d := s.regs[insn.Dst]
	// Null-check refinement for map-lookup results.
	if d.kind == rkPtrMapValueOrNull && !isRegSrc(insn.Op) && insn.Imm == 0 {
		taken, fall = s, s
		switch insn.Op {
		case OpJeqImm: // taken => ptr == 0 => NULL; fallthrough => non-null
			taken.regs[insn.Dst] = constReg(0)
			fall.regs[insn.Dst] = regState{kind: rkPtrMapValue, mapIdx: d.mapIdx, lo: d.lo, hi: d.hi}
		case OpJneImm: // taken => non-null
			taken.regs[insn.Dst] = regState{kind: rkPtrMapValue, mapIdx: d.mapIdx, lo: d.lo, hi: d.hi}
			fall.regs[insn.Dst] = constReg(0)
		default:
			return s, s, false, false, verr(-1, "map value pointer compared with non-equality op before null check")
		}
		return taken, fall, true, true, nil
	}
	if d.kind != rkScalar {
		return s, s, false, false, verr(-1, "conditional jump on %s", d.kind)
	}
	var b VReg
	if isRegSrc(insn.Op) {
		if s.regs[insn.Src].kind != rkScalar {
			return s, s, false, false, verr(-1, "register compare on non-scalars")
		}
		b = s.regs[insn.Src].vr
	} else {
		b = vrConst(uint64(insn.Imm))
	}
	rel := relFor(insn.Op)
	ta, tb, okT := vrRefine(rel, d.vr, b)
	fa, fb, okF := vrRefine(negRel(rel), d.vr, b)
	if !okT && !okF {
		// The relation and its negation partition concrete pairs, so both
		// edges cannot be infeasible; degrade to no pruning if refinement
		// ever claims otherwise.
		okT, okF = true, true
		ta, tb, fa, fb = d.vr, b, d.vr, b
	}
	taken, fall = s, s
	if okT {
		taken.regs[insn.Dst].vr = ta
		if isRegSrc(insn.Op) {
			taken.regs[insn.Src].vr = tb
		}
	}
	if okF {
		fall.regs[insn.Dst].vr = fa
		if isRegSrc(insn.Op) {
			fall.regs[insn.Src].vr = fb
		}
	}
	return taken, fall, okT, okF, nil
}

func step(p *Program, pc int, in absState) ([]succ, error) {
	s := in
	insn := p.Insns[pc]
	next := func() []succ { return []succ{{pc + 1, s}} }

	switch {
	case insn.Op == OpExit:
		if s.regs[R0].kind != rkScalar {
			return nil, verr(pc, "exit with R0 %s (must be scalar)", s.regs[R0].kind)
		}
		return nil, nil

	case insn.Op == OpMovImm:
		if insn.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		s.regs[insn.Dst] = constReg(insn.Imm)
		return next(), nil

	case insn.Op == OpMovReg:
		if insn.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		if err := requireInit(pc, &s, insn.Src, "mov"); err != nil {
			return nil, err
		}
		s.regs[insn.Dst] = s.regs[insn.Src]
		return next(), nil

	case isALU(insn.Op):
		if insn.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		if err := requireInit(pc, &s, insn.Dst, "alu"); err != nil {
			return nil, err
		}
		var src regState
		if isRegSrc(insn.Op) {
			if err := requireInit(pc, &s, insn.Src, "alu"); err != nil {
				return nil, err
			}
			src = s.regs[insn.Src]
		} else {
			src = constReg(insn.Imm)
		}
		dst := s.regs[insn.Dst]
		// Pointer arithmetic: ptr +/- scalar with known signed bounds.
		if dst.kind == rkPtrStack || dst.kind == rkPtrMapValue {
			switch insn.Op {
			case OpAddImm, OpAddReg, OpSubImm, OpSubReg:
				if src.kind != rkScalar {
					return nil, verr(pc, "pointer arithmetic with unknown scalar")
				}
				dlo, dhi, ok := signedBounds(src.vr)
				if !ok {
					return nil, verr(pc, "pointer arithmetic with unknown scalar")
				}
				if insn.Op == OpSubImm || insn.Op == OpSubReg {
					if dlo == math.MinInt64 {
						// The VM's wrapping negation maps MinInt64 to
						// itself, so the negated delta set is not an
						// interval; take the full hull (poisons the bounds).
						dlo, dhi = math.MinInt64, math.MaxInt64
					} else {
						dlo, dhi = -dhi, -dlo
					}
				}
				dst.lo, dst.hi = addOff(dst.lo, dst.hi, dlo, dhi)
				s.regs[insn.Dst] = dst
				return next(), nil
			default:
				return nil, verr(pc, "forbidden ALU op on pointer")
			}
		}
		if dst.kind != rkScalar {
			return nil, verr(pc, "alu on %s", dst.kind)
		}
		if src.kind != rkScalar {
			return nil, verr(pc, "alu with %s source", src.kind)
		}
		if (insn.Op == OpDivReg || insn.Op == OpModReg) && src.vr.IsConst() && src.vr.Const() == 0 {
			return nil, verr(pc, "division by known-zero register")
		}
		s.regs[insn.Dst] = scalarReg(vrTransfer(insn.Op, dst.vr, src.vr))
		return next(), nil

	case insn.Op == OpLoadMapPtr:
		if insn.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		s.regs[insn.Dst] = regState{kind: rkConstMap, mapIdx: int32(insn.Imm)}
		return next(), nil

	case insn.Op == OpLoad:
		if insn.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		base := s.regs[insn.Src]
		switch base.kind {
		case rkPtrStack:
			if err := checkStackRange(pc, &s, base, insn.Off, 8, stackRead); err != nil {
				return nil, err
			}
		case rkPtrMapValue, rkPtrMapValueOrNull:
			if err := checkMapValueAccess(p, pc, base, insn.Off, 8); err != nil {
				return nil, err
			}
		default:
			return nil, verr(pc, "load through %s", base.kind)
		}
		s.regs[insn.Dst] = unknownScalarReg()
		return next(), nil

	case insn.Op == OpStore, insn.Op == OpStoreImm:
		base := s.regs[insn.Dst]
		if insn.Op == OpStore {
			if err := requireInit(pc, &s, insn.Src, "store"); err != nil {
				return nil, err
			}
			if s.regs[insn.Src].kind != rkScalar {
				return nil, verr(pc, "storing %s to memory (pointer leak)", s.regs[insn.Src].kind)
			}
		}
		switch base.kind {
		case rkPtrStack:
			if err := checkStackRange(pc, &s, base, insn.Off, 8, stackWrite); err != nil {
				return nil, err
			}
		case rkPtrMapValue, rkPtrMapValueOrNull:
			if err := checkMapValueAccess(p, pc, base, insn.Off, 8); err != nil {
				return nil, err
			}
		default:
			return nil, verr(pc, "store through %s", base.kind)
		}
		return next(), nil

	case insn.Op == OpJa:
		return []succ{{pc + 1 + int(insn.Off), s}}, nil

	case isCondJump(insn.Op):
		if err := requireInit(pc, &s, insn.Dst, "jump"); err != nil {
			return nil, err
		}
		if isRegSrc(insn.Op) {
			if err := requireInit(pc, &s, insn.Src, "jump"); err != nil {
				return nil, err
			}
		}
		taken, fall, feasT, feasF, err := condStates(s, insn)
		if err != nil {
			if ve := new(VerifyError); errors.As(err, &ve) {
				ve.PC = pc
			}
			return nil, err
		}
		var outs []succ
		if feasT {
			outs = append(outs, succ{pc + 1 + int(insn.Off), taken})
		}
		if feasF {
			outs = append(outs, succ{pc + 1, fall})
		}
		return outs, nil

	case insn.Op == OpCall:
		spec, _ := HelperByID(insn.Imm)
		argRegs := []Reg{R1, R2, R3, R4, R5}
		var constMap int32 = -1
		var sizedPtr regState
		sizedPtrSeen := false
		for i, kind := range spec.Args {
			r := argRegs[i]
			if err := requireInit(pc, &s, r, spec.Name); err != nil {
				return nil, err
			}
			a := s.regs[r]
			switch kind {
			case ArgScalar:
				if a.kind != rkScalar {
					return nil, verr(pc, "%s arg %d must be scalar, got %s", spec.Name, i+1, a.kind)
				}
			case ArgConstMap:
				if a.kind != rkConstMap {
					return nil, verr(pc, "%s arg %d must be a map handle, got %s", spec.Name, i+1, a.kind)
				}
				constMap = a.mapIdx
				// Helper/map-type compatibility, checked statically like
				// real eBPF: the runtime type assertions in vm.go must be
				// unreachable for verified programs. (Found by FuzzVerify:
				// stack_pop on a hash map verified, then faulted.)
				switch insn.Imm {
				case HelperStackPush, HelperStackPop:
					if _, ok := p.Maps[constMap].(*StackMap); !ok {
						return nil, verr(pc, "%s arg %d must be a stack map, got %q", spec.Name, i+1, p.Maps[constMap].Name())
					}
				case HelperPerfOutput:
					// Any PerfOutputTarget is admissible: the shared ring
					// and the per-CPU ring set share the helper signature,
					// like perf_event_output over BPF_MAP_TYPE_PERF_EVENT_ARRAY.
					if _, ok := p.Maps[constMap].(PerfOutputTarget); !ok {
						return nil, verr(pc, "%s arg %d must be a perf ring buffer, got %q", spec.Name, i+1, p.Maps[constMap].Name())
					}
				}
			case ArgPtrKey, ArgPtrValue:
				if constMap < 0 {
					return nil, verr(pc, "%s arg %d: no preceding map handle", spec.Name, i+1)
				}
				size := p.Maps[constMap].KeySize()
				if kind == ArgPtrValue {
					size = p.Maps[constMap].ValueSize()
				}
				if size == 0 {
					break // keyless map; argument ignored
				}
				if a.kind != rkPtrStack {
					return nil, verr(pc, "%s arg %d must be a stack pointer, got %s", spec.Name, i+1, a.kind)
				}
				// Map update/push read the buffer, so every byte must be
				// initialized. Pop writes it, but only when the pop
				// succeeds (vm.go leaves the buffer untouched on the
				// failure path), so the destination is bounds-checked
				// without marking bytes initialized: a conditional write
				// must not let later code read bytes the VM never wrote.
				mode := stackRead
				if insn.Imm == HelperStackPop {
					mode = stackCondWrite
				}
				if err := checkStackRange(pc, &s, a, 0, size, mode); err != nil {
					return nil, err
				}
			case ArgPtrSized:
				if a.kind != rkPtrStack {
					return nil, verr(pc, "%s arg %d must be a stack pointer, got %s", spec.Name, i+1, a.kind)
				}
				sizedPtr = a
				sizedPtrSeen = true
			case ArgSizeConst:
				if a.kind != rkScalar || !a.vr.IsConst() || int64(a.vr.Const()) <= 0 {
					return nil, verr(pc, "%s arg %d must be a known positive constant size", spec.Name, i+1)
				}
				if !sizedPtrSeen {
					return nil, verr(pc, "%s arg %d: size without preceding pointer", spec.Name, i+1)
				}
				if err := checkStackRange(pc, &s, sizedPtr, 0, int(a.vr.Const()), stackRead); err != nil {
					return nil, err
				}
			}
		}
		// Helper calls clobber caller-saved registers.
		for _, r := range argRegs {
			s.regs[r] = regState{kind: rkUninit}
		}
		switch spec.Ret {
		case RetMapValueOrNull:
			if constMap < 0 {
				return nil, verr(pc, "%s returns map value but has no map arg", spec.Name)
			}
			s.regs[R0] = regState{kind: rkPtrMapValueOrNull, mapIdx: constMap}
		default:
			s.regs[R0] = unknownScalarReg()
		}
		return next(), nil
	}
	return nil, verr(pc, "unhandled opcode %v", insn.Op)
}
