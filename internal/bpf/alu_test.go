package bpf

import (
	"math"
	"testing"
)

// Cross-check that the three consumers of ALU semantics — the VM
// interpreter, the shared evalALU helper, and the verifier's abstract
// constant folder — agree on every opcode over a table of edge operands.
// evalALU is the single source of truth; this test makes a divergence in
// any consumer fail loudly.

var aluEdgeOperands = []int64{
	0, 1, 2, 3, 7, 8, 63, 64, 65, 255, 4096,
	-1, -2, -63, -64, -4096,
	math.MaxInt64, math.MinInt64, math.MaxInt64 - 1, math.MinInt64 + 1,
}

// aluRegOps maps each reg-source ALU opcode to whether the verifier
// rejects a known-zero src (division).
var aluRegOps = []struct {
	op         Op
	rejectZero bool
}{
	{OpMovReg, false},
	{OpAddReg, false},
	{OpSubReg, false},
	{OpMulReg, false},
	{OpDivReg, true},
	{OpModReg, true},
	{OpAndReg, false},
	{OpOrReg, false},
	{OpXorReg, false},
	{OpLshReg, false},
	{OpRshReg, false},
	{OpArshReg, false},
}

func TestALUSemanticsCrossCheck(t *testing.T) {
	task := testTask()
	for _, tc := range aluRegOps {
		for _, a := range aluEdgeOperands {
			for _, b := range aluEdgeOperands {
				want := evalALU(tc.op, a, b)

				// Verifier constant fold: transfer on two singletons must
				// produce exactly the concrete result.
				out := vrTransfer(tc.op, vrConst(uint64(a)), vrConst(uint64(b)))
				if !out.Contains(uint64(want)) {
					t.Fatalf("%v(%d, %d): abstract transfer %+v does not contain evalALU result %d",
						tc.op, a, b, out, want)
				}

				if tc.rejectZero && b == 0 {
					// The verifier rejects division by a known-zero
					// register, so the VM path is unreachable for this
					// input; evalALU still defines it as 0.
					if want != 0 {
						t.Fatalf("%v(%d, 0) = %d, want 0", tc.op, a, want)
					}
					continue
				}
				if !out.IsConst() || int64(out.Const()) != want {
					t.Fatalf("%v(%d, %d): fold gave %+v, want const %d", tc.op, a, b, out, want)
				}
				p := &Program{Name: "alu-x", Insns: []Insn{
					{Op: OpMovImm, Dst: R1, Imm: a},
					{Op: OpMovImm, Dst: R2, Imm: b},
					{Op: tc.op, Dst: R1, Src: R2},
					{Op: OpMovReg, Dst: R0, Src: R1},
					{Op: OpExit},
				}}
				lp, err := Load(p, 0)
				if err != nil {
					t.Fatalf("%v(%d, %d): load: %v", tc.op, a, b, err)
				}
				got, _, rerr := lp.Run(task, nil)
				if rerr != nil {
					t.Fatalf("%v(%d, %d): run: %v", tc.op, a, b, rerr)
				}
				if int64(got) != want {
					t.Fatalf("%v(%d, %d): VM returned %d, evalALU returned %d", tc.op, a, b, got, want)
				}
			}
		}
	}
}

// Immediate forms share evalALU with the register forms but pass through
// the verifier's structural imm checks; exercise the structurally-legal
// subset end to end.
func TestALUImmFormsCrossCheck(t *testing.T) {
	task := testTask()
	immOps := []struct {
		op    Op
		legal func(imm int64) bool
	}{
		{OpAddImm, func(int64) bool { return true }},
		{OpSubImm, func(int64) bool { return true }},
		{OpMulImm, func(int64) bool { return true }},
		{OpDivImm, func(imm int64) bool { return imm != 0 }},
		{OpModImm, func(imm int64) bool { return imm != 0 }},
		{OpAndImm, func(int64) bool { return true }},
		{OpOrImm, func(int64) bool { return true }},
		{OpXorImm, func(int64) bool { return true }},
		{OpLshImm, func(imm int64) bool { return imm >= 0 && imm < 64 }},
		{OpRshImm, func(imm int64) bool { return imm >= 0 && imm < 64 }},
		{OpArshImm, func(imm int64) bool { return imm >= 0 && imm < 64 }},
	}
	for _, tc := range immOps {
		for _, a := range aluEdgeOperands {
			for _, imm := range aluEdgeOperands {
				if !tc.legal(imm) {
					continue
				}
				want := evalALU(tc.op, a, imm)
				p := &Program{Name: "alu-imm-x", Insns: []Insn{
					{Op: OpMovImm, Dst: R0, Imm: a},
					{Op: tc.op, Dst: R0, Imm: imm},
					{Op: OpExit},
				}}
				lp, err := Load(p, 0)
				if err != nil {
					t.Fatalf("%v(%d, imm %d): load: %v", tc.op, a, imm, err)
				}
				got, _, rerr := lp.Run(task, nil)
				if rerr != nil {
					t.Fatalf("%v(%d, imm %d): run: %v", tc.op, a, imm, rerr)
				}
				if int64(got) != want {
					t.Fatalf("%v(%d, imm %d): VM returned %d, evalALU returned %d", tc.op, a, imm, got, want)
				}
			}
		}
	}
}

func TestALUNegCrossCheck(t *testing.T) {
	task := testTask()
	for _, a := range aluEdgeOperands {
		want := evalALU(OpNeg, a, 0)
		out := vrTransfer(OpNeg, vrConst(uint64(a)), vrConst(0))
		if !out.IsConst() || int64(out.Const()) != want {
			t.Fatalf("neg(%d): fold gave %+v, want const %d", a, out, want)
		}
		p := &Program{Name: "alu-neg", Insns: []Insn{
			{Op: OpMovImm, Dst: R0, Imm: a},
			{Op: OpNeg, Dst: R0},
			{Op: OpExit},
		}}
		lp, err := Load(p, 0)
		if err != nil {
			t.Fatalf("neg(%d): load: %v", a, err)
		}
		got, _, rerr := lp.Run(task, nil)
		if rerr != nil {
			t.Fatalf("neg(%d): run: %v", a, rerr)
		}
		if int64(got) != want {
			t.Fatalf("neg(%d): VM returned %d, evalALU returned %d", a, got, want)
		}
	}
}
