// Package bpf implements the BPF-style virtual machine that hosts TScout's
// generated Collector programs. It mirrors the pieces of Linux eBPF the
// paper depends on (§2.3, §5.1): a register machine with a restricted
// instruction set, a static verifier that builds a control-flow graph and
// rejects unsafe programs before they load, kernel maps (hash, array,
// per-task, stack), helper functions for reading kernel state, and a
// bounded perf ring buffer for shipping samples to user space.
//
// Programs are built with Builder, verified and loaded with Load, and
// attached to kernel tracepoints; execution cost is charged in virtual time
// (instructions x HardwareProfile.BPFInsnNS plus helper costs).
package bpf

import "fmt"

// Reg is a VM register. R0 holds return values, R1-R5 are caller-saved
// helper arguments, R6-R9 are callee-saved, and R10 is the read-only frame
// pointer to the top of the 512-byte stack.
type Reg uint8

// VM registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10

	numRegs = 11
	// regSlots pads the runtime register file to the next power of two so a
	// masked byte index provably stays in bounds (see execState.regs).
	regSlots = 16
)

// StackSize is the per-invocation stack available below R10.
const StackSize = 512

// DefaultMaxInsns is the verifier's default program-length limit. The real
// kernel allows 1M instructions; TScout Collectors are hundreds of
// instructions (paper §5.1), so a much smaller default catches runaway
// codegen early.
const DefaultMaxInsns = 65536

// Op is an instruction opcode.
type Op uint8

// Opcodes. ALU operations come in register-source (suffix X) and
// immediate-source forms; jumps likewise.
const (
	OpInvalid Op = iota

	// ALU: dst = dst <op> (src|imm)
	OpMovImm
	OpMovReg
	OpAddImm
	OpAddReg
	OpSubImm
	OpSubReg
	OpMulImm
	OpMulReg
	OpDivImm // unsigned; divide-by-zero yields 0 like BPF
	OpDivReg
	OpModImm
	OpModReg
	OpAndImm
	OpAndReg
	OpOrImm
	OpOrReg
	OpXorImm
	OpXorReg
	OpLshImm
	OpLshReg
	OpRshImm
	OpRshReg
	OpNeg

	// Memory: 8-byte loads and stores.
	OpLoad     // dst = *(u64 *)(src + off)
	OpStore    // *(u64 *)(dst + off) = src
	OpStoreImm // *(u64 *)(dst + off) = imm

	// LoadMapPtr materializes a handle to the program's map table entry
	// imm in dst (the LD_IMM64 map-fd pseudo-instruction in real BPF).
	OpLoadMapPtr

	// Jumps: relative to the next instruction, in instructions.
	OpJa
	OpJeqImm
	OpJeqReg
	OpJneImm
	OpJneReg
	OpJgtImm
	OpJgtReg
	OpJgeImm
	OpJgeReg
	OpJltImm
	OpJltReg
	OpJleImm
	OpJleReg
	OpJsetImm // jump if dst & imm

	// Call invokes helper imm.
	OpCall
	// Exit returns R0 to the kernel.
	OpExit

	// Arithmetic (sign-propagating) right shift: dst = int64(dst) >> (src|imm).
	// Appended after OpExit so the opcode numbering of the existing
	// instructions — and with it the on-disk fuzz corpora encoded by
	// EncodeInsns — stays stable.
	OpArshImm
	OpArshReg
)

var opNames = map[Op]string{
	OpMovImm: "mov", OpMovReg: "movr", OpAddImm: "add", OpAddReg: "addr",
	OpSubImm: "sub", OpSubReg: "subr", OpMulImm: "mul", OpMulReg: "mulr",
	OpDivImm: "div", OpDivReg: "divr", OpModImm: "mod", OpModReg: "modr",
	OpAndImm: "and", OpAndReg: "andr", OpOrImm: "or", OpOrReg: "orr",
	OpXorImm: "xor", OpXorReg: "xorr", OpLshImm: "lsh", OpLshReg: "lshr",
	OpRshImm: "rsh", OpRshReg: "rshr", OpArshImm: "arsh", OpArshReg: "arshr",
	OpNeg:  "neg",
	OpLoad: "ldx", OpStore: "stx", OpStoreImm: "st", OpLoadMapPtr: "ldmap",
	OpJa: "ja", OpJeqImm: "jeq", OpJeqReg: "jeqr", OpJneImm: "jne",
	OpJneReg: "jner", OpJgtImm: "jgt", OpJgtReg: "jgtr", OpJgeImm: "jge",
	OpJgeReg: "jger", OpJltImm: "jlt", OpJltReg: "jltr", OpJleImm: "jle",
	OpJleReg: "jler", OpJsetImm: "jset", OpCall: "call", OpExit: "exit",
}

// Insn is one VM instruction.
type Insn struct {
	Op  Op
	Dst Reg
	Src Reg
	Off int32 // memory offset or jump displacement
	Imm int64
	// LoopBound, when set on a backward jump, declares the compile-time
	// trip-count bound the verifier requires for loops (paper §5.1:
	// "loops must be bounded at compile-time"). Zero means "not a
	// declared loop"; backward jumps without a bound are rejected.
	LoopBound int32
}

func (i Insn) String() string {
	name := opNames[i.Op]
	if name == "" {
		name = fmt.Sprintf("op%d", i.Op)
	}
	switch i.Op {
	case OpExit:
		return name
	case OpCall:
		return fmt.Sprintf("%s %d", name, i.Imm)
	case OpJa:
		return fmt.Sprintf("%s %+d", name, i.Off)
	case OpLoad:
		return fmt.Sprintf("%s r%d, [r%d%+d]", name, i.Dst, i.Src, i.Off)
	case OpStore:
		return fmt.Sprintf("%s [r%d%+d], r%d", name, i.Dst, i.Off, i.Src)
	case OpStoreImm:
		return fmt.Sprintf("%s [r%d%+d], %d", name, i.Dst, i.Off, i.Imm)
	case OpLoadMapPtr:
		return fmt.Sprintf("%s r%d, map[%d]", name, i.Dst, i.Imm)
	default:
		if isJump(i.Op) {
			if isRegSrc(i.Op) {
				return fmt.Sprintf("%s r%d, r%d, %+d", name, i.Dst, i.Src, i.Off)
			}
			return fmt.Sprintf("%s r%d, %d, %+d", name, i.Dst, i.Imm, i.Off)
		}
		if isRegSrc(i.Op) {
			return fmt.Sprintf("%s r%d, r%d", name, i.Dst, i.Src)
		}
		return fmt.Sprintf("%s r%d, %d", name, i.Dst, i.Imm)
	}
}

func isJump(op Op) bool {
	switch op {
	case OpJa, OpJeqImm, OpJeqReg, OpJneImm, OpJneReg, OpJgtImm, OpJgtReg,
		OpJgeImm, OpJgeReg, OpJltImm, OpJltReg, OpJleImm, OpJleReg, OpJsetImm:
		return true
	}
	return false
}

func isCondJump(op Op) bool { return isJump(op) && op != OpJa }

func isRegSrc(op Op) bool {
	switch op {
	case OpMovReg, OpAddReg, OpSubReg, OpMulReg, OpDivReg, OpModReg,
		OpAndReg, OpOrReg, OpXorReg, OpLshReg, OpRshReg, OpArshReg,
		OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg,
		OpStore, OpLoad:
		return true
	}
	return false
}

func isALU(op Op) bool {
	switch op {
	case OpMovImm, OpMovReg, OpAddImm, OpAddReg, OpSubImm, OpSubReg,
		OpMulImm, OpMulReg, OpDivImm, OpDivReg, OpModImm, OpModReg,
		OpAndImm, OpAndReg, OpOrImm, OpOrReg, OpXorImm, OpXorReg,
		OpLshImm, OpLshReg, OpRshImm, OpRshReg, OpArshImm, OpArshReg, OpNeg:
		return true
	}
	return false
}

// Program is an unverified program: instructions plus the map table the
// instructions reference by index.
type Program struct {
	Name  string
	Insns []Insn
	Maps  []Map
}

// Disassemble renders the program as text, one instruction per line.
func (p *Program) Disassemble() string {
	out := ""
	for i, in := range p.Insns {
		out += fmt.Sprintf("%4d: %s\n", i, in.String())
	}
	return out
}
