package bpf

import "sync"

// PerfOutputTarget is the map contract perf_event_output submits through:
// any bounded sample channel that can route a submission by the submitting
// task's CPU. *PerfRingBuffer (one shared ring; the CPU hint is ignored)
// and *PerCPURing (one ring per simulated CPU) both implement it, and the
// verifier's helper/map compatibility check admits either.
type PerfOutputTarget interface {
	Map
	SubmitFrom(cpu int, data []byte)
}

// cpuRing is one CPU's slice of a PerCPURing: a bounded FIFO with its own
// lock and counters, like one CPU's mmap'd perf buffer. Slot backing
// arrays are reused across submissions (copy-in truncates and refills the
// slot), so a warmed ring submits and drains with zero allocations. The
// trailing pad keeps neighboring rings' hot fields off one cache line —
// per-CPU isolation is the whole point of the structure.
type cpuRing struct {
	mu        sync.Mutex
	slots     [][]byte // guarded by mu
	head      int      // index of oldest entry; guarded by mu
	count     int      // guarded by mu
	high      int      // guarded by mu
	submitted int64    // guarded by mu
	drained   int64    // guarded by mu
	dropped   int64    // guarded by mu
	_         [64]byte
}

func (r *cpuRing) submit(data []byte) {
	r.mu.Lock()
	slot := (r.head + r.count) % len(r.slots)
	if r.count == len(r.slots) {
		// Full: overwrite the oldest (TScout never blocks the submitter).
		slot = r.head
		r.head = (r.head + 1) % len(r.slots)
		r.dropped++
	} else {
		r.count++
		if r.count > r.high {
			r.high = r.count
		}
	}
	r.slots[slot] = append(r.slots[slot][:0], data...)
	r.submitted++
	r.mu.Unlock()
}

func (r *cpuRing) drainBatch(dst *Batch, max int) int {
	r.mu.Lock()
	n := r.count
	if max > 0 && max < n {
		n = max
	}
	for i := 0; i < n; i++ {
		dst.Append(r.slots[r.head])
		r.head = (r.head + 1) % len(r.slots)
	}
	r.count -= n
	r.drained += int64(n)
	r.mu.Unlock()
	return n
}

func (r *cpuRing) stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingStats{
		Submitted: r.submitted,
		Drained:   r.drained,
		Dropped:   r.dropped,
		Pending:   r.count,
		HighWater: r.high,
		Capacity:  len(r.slots),
	}
}

func (r *cpuRing) reset() {
	r.mu.Lock()
	for i := range r.slots {
		r.slots[i] = nil
	}
	r.head, r.count, r.high = 0, 0, 0
	r.submitted, r.drained, r.dropped = 0, 0, 0
	r.mu.Unlock()
}

// PerCPURing is the per-CPU analogue of PerfRingBuffer: one bounded ring
// per simulated CPU, as the Linux perf subsystem allocates its buffers
// (paper §3.2 — what lets Processor threads scale without contending on
// one lock). Submissions route by the submitting task's CPU; each CPU's
// ring has its own mutex, so submitters on different CPUs never contend
// and a drain thread that owns a disjoint set of CPU rings never shares a
// lock with another drain thread.
type PerCPURing struct {
	name      string
	perCPUCap int
	rings     []cpuRing
}

// NewPerCPURing creates a ring set of numCPUs rings holding at most
// perCPUCapacity samples each.
func NewPerCPURing(name string, numCPUs, perCPUCapacity int) *PerCPURing {
	if numCPUs < 1 {
		numCPUs = 1
	}
	if perCPUCapacity < 1 {
		perCPUCapacity = 1
	}
	r := &PerCPURing{name: name, perCPUCap: perCPUCapacity, rings: make([]cpuRing, numCPUs)}
	for i := range r.rings {
		r.rings[i].slots = make([][]byte, perCPUCapacity) //tsvet:ignore guarded-by construction: the ring has not escaped, nothing can race yet
	}
	return r
}

// Name returns the ring set's name.
func (r *PerCPURing) Name() string { return r.name }

// KeySize returns 0; ring buffers are keyless.
func (r *PerCPURing) KeySize() int { return 0 }

// ValueSize returns 0; samples are variable-length.
func (r *PerCPURing) ValueSize() int { return 0 }

// MaxEntries returns the total capacity across all CPU rings.
func (r *PerCPURing) MaxEntries() int { return r.perCPUCap * len(r.rings) }

// PerCPUCapacity returns one CPU ring's capacity.
func (r *PerCPURing) PerCPUCapacity() int { return r.perCPUCap }

// NumCPUs returns the number of CPU rings.
func (r *PerCPURing) NumCPUs() int { return len(r.rings) }

// Len returns the number of buffered samples across all CPU rings.
func (r *PerCPURing) Len() int {
	n := 0
	for i := range r.rings {
		r.rings[i].mu.Lock()
		n += r.rings[i].count
		r.rings[i].mu.Unlock()
	}
	return n
}

// Lookup is unsupported on ring buffers and returns nil.
func (r *PerCPURing) Lookup(key []byte) []byte { return nil }

// Update submits value as a sample on CPU 0 (Map interface adapter).
func (r *PerCPURing) Update(key, value []byte) error {
	r.SubmitFrom(0, value)
	return nil
}

// Delete is unsupported on ring buffers.
func (r *PerCPURing) Delete(key []byte) bool { return false }

// SubmitFrom copies data into the given CPU's ring, overwriting the oldest
// sample (counted as dropped) when full. Out-of-range CPUs wrap, so a task
// on a CPU the ring set does not cover still lands deterministically.
func (r *PerCPURing) SubmitFrom(cpu int, data []byte) {
	if cpu < 0 {
		cpu = 0
	}
	r.rings[cpu%len(r.rings)].submit(data)
}

// Submit routes to CPU 0: compatibility with callers (tests, benchmarks)
// that inject samples without a task context.
func (r *PerCPURing) Submit(data []byte) { r.SubmitFrom(0, data) }

// DrainBatch removes up to max samples (0 or less = everything) from one
// CPU's ring in submission order, appending them to dst's contiguous
// buffer, and returns the number drained. One lock acquisition covers the
// batch and no per-sample slice is allocated.
func (r *PerCPURing) DrainBatch(cpu int, dst *Batch, max int) int {
	if cpu < 0 || cpu >= len(r.rings) {
		return 0
	}
	return r.rings[cpu].drainBatch(dst, max)
}

// RingStats returns a consistent snapshot of one CPU ring's counters.
func (r *PerCPURing) RingStats(cpu int) RingStats {
	if cpu < 0 || cpu >= len(r.rings) {
		return RingStats{}
	}
	return r.rings[cpu].stats()
}

// CPUStats snapshots every CPU ring, indexed by CPU.
func (r *PerCPURing) CPUStats() []RingStats {
	out := make([]RingStats, len(r.rings))
	for i := range r.rings {
		out[i] = r.rings[i].stats()
	}
	return out
}

// Stats aggregates the per-CPU counters into one snapshot (Capacity is the
// total across rings). Per-ring totals are each taken under that ring's
// lock; the sum is not a single atomic cut across CPUs, matching what
// reading per-CPU perf counters sequentially observes.
func (r *PerCPURing) Stats() RingStats {
	var agg RingStats
	for i := range r.rings {
		s := r.rings[i].stats()
		agg.Submitted += s.Submitted
		agg.Drained += s.Drained
		agg.Dropped += s.Dropped
		agg.Pending += s.Pending
		// HighWater aggregates as the peak of any single ring — summing
		// peaks reached at different times would overstate occupancy.
		if s.HighWater > agg.HighWater {
			agg.HighWater = s.HighWater
		}
		agg.Capacity += s.Capacity
	}
	return agg
}

// Reset clears every CPU ring and its statistics.
func (r *PerCPURing) Reset() {
	for i := range r.rings {
		r.rings[i].reset()
	}
}

// Drain removes and returns up to max samples per CPU ring (0 or less =
// everything), concatenated in CPU order. It is a compatibility
// convenience for tests and offline tools; the allocation-free hot path
// is DrainBatch.
func (r *PerCPURing) Drain(max int) [][]byte {
	var out [][]byte
	var b Batch
	for cpu := range r.rings {
		b.Reset()
		n := r.rings[cpu].drainBatch(&b, max)
		for i := 0; i < n; i++ {
			cp := make([]byte, len(b.Sample(i)))
			copy(cp, b.Sample(i))
			out = append(out, cp)
		}
	}
	return out
}

// Submitted returns total Submit calls across all CPU rings.
func (r *PerCPURing) Submitted() int64 { return r.Stats().Submitted }

// Dropped returns samples lost to overwrites across all CPU rings.
func (r *PerCPURing) Dropped() int64 { return r.Stats().Dropped }
