package bpf

import (
	"encoding/binary"
	"errors"
	"sync"
)

// Map errors.
var (
	ErrMapFull    = errors.New("bpf: map full")
	ErrStackEmpty = errors.New("bpf: stack map empty")
	ErrBadKeySize = errors.New("bpf: bad key size")
	ErrBadValSize = errors.New("bpf: bad value size")
)

// Map is the interface all BPF map types implement. Values returned by
// Lookup alias the stored bytes, so in-place mutation through a map-value
// pointer persists — the same semantics Collector programs rely on to
// accumulate metrics across marker events (paper §3.2).
type Map interface {
	Name() string
	KeySize() int
	ValueSize() int
	MaxEntries() int
	Len() int
	// Lookup returns the stored value bytes or nil if absent.
	Lookup(key []byte) []byte
	// Update inserts or replaces the value for key.
	Update(key, value []byte) error
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) bool
}

// U64Key encodes a uint64 as a little-endian 8-byte map key.
func U64Key(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// U64 reads a little-endian uint64 from the front of b.
func U64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// PutU64 writes v into the first 8 bytes of b.
func PutU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// HashMap is the general-purpose BPF hash map.
type HashMap struct {
	name       string
	keySize    int
	valueSize  int
	maxEntries int

	mu sync.Mutex
	m  map[string][]byte
}

// NewHashMap creates a hash map with fixed key/value sizes.
func NewHashMap(name string, keySize, valueSize, maxEntries int) *HashMap {
	return &HashMap{
		name: name, keySize: keySize, valueSize: valueSize,
		maxEntries: maxEntries, m: make(map[string][]byte),
	}
}

// Name returns the map name.
func (h *HashMap) Name() string { return h.name }

// KeySize returns the fixed key size in bytes.
func (h *HashMap) KeySize() int { return h.keySize }

// ValueSize returns the fixed value size in bytes.
func (h *HashMap) ValueSize() int { return h.valueSize }

// MaxEntries returns the capacity.
func (h *HashMap) MaxEntries() int { return h.maxEntries }

// Len returns the current entry count.
func (h *HashMap) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.m)
}

// Lookup returns the value stored for key (aliasing the internal buffer),
// or nil if absent or the key is the wrong size.
func (h *HashMap) Lookup(key []byte) []byte {
	if len(key) != h.keySize {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.m[string(key)]
}

// Update inserts or replaces the value for key (the value is copied).
func (h *HashMap) Update(key, value []byte) error {
	if len(key) != h.keySize {
		return ErrBadKeySize
	}
	if len(value) != h.valueSize {
		return ErrBadValSize
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sk := string(key)
	if _, ok := h.m[sk]; !ok && len(h.m) >= h.maxEntries {
		return ErrMapFull
	}
	v := make([]byte, h.valueSize)
	copy(v, value)
	h.m[sk] = v
	return nil
}

// Range calls fn for every entry under the map lock with a copy of the key
// and the live value buffer; returning false stops the walk. It exists for
// user-space sweeps over kernel-written state — the Collector reaper scans
// in-flight OU entries for dead task generations. The iteration order is
// unspecified; callers needing determinism must sort what they collect.
func (h *HashMap) Range(fn func(key, value []byte) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for k, v := range h.m {
		if !fn([]byte(k), v) {
			return
		}
	}
}

// Delete removes key.
func (h *HashMap) Delete(key []byte) bool {
	if len(key) != h.keySize {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sk := string(key)
	_, ok := h.m[sk]
	delete(h.m, sk)
	return ok
}

// ArrayMap is a fixed-size array of values indexed by a uint64 key. All
// slots exist from creation (like BPF_MAP_TYPE_ARRAY).
type ArrayMap struct {
	name      string
	valueSize int
	values    [][]byte
}

// NewArrayMap creates an array map with n preallocated zeroed slots.
func NewArrayMap(name string, valueSize, n int) *ArrayMap {
	vals := make([][]byte, n)
	for i := range vals {
		vals[i] = make([]byte, valueSize)
	}
	return &ArrayMap{name: name, valueSize: valueSize, values: vals}
}

// Name returns the map name.
func (a *ArrayMap) Name() string { return a.name }

// KeySize returns 8 (uint64 index).
func (a *ArrayMap) KeySize() int { return 8 }

// ValueSize returns the slot size in bytes.
func (a *ArrayMap) ValueSize() int { return a.valueSize }

// MaxEntries returns the slot count.
func (a *ArrayMap) MaxEntries() int { return len(a.values) }

// Len returns the slot count (array slots always exist).
func (a *ArrayMap) Len() int { return len(a.values) }

// Lookup returns the slot for the index encoded in key, or nil if out of
// range.
func (a *ArrayMap) Lookup(key []byte) []byte {
	if len(key) != 8 {
		return nil
	}
	i := U64(key)
	if i >= uint64(len(a.values)) {
		return nil
	}
	return a.values[i]
}

// Update copies value into the indexed slot.
func (a *ArrayMap) Update(key, value []byte) error {
	if len(value) != a.valueSize {
		return ErrBadValSize
	}
	dst := a.Lookup(key)
	if dst == nil {
		return ErrBadKeySize
	}
	copy(dst, value)
	return nil
}

// Delete zeroes the indexed slot (array entries cannot be removed).
func (a *ArrayMap) Delete(key []byte) bool {
	dst := a.Lookup(key)
	if dst == nil {
		return false
	}
	for i := range dst {
		dst[i] = 0
	}
	return true
}

// StackMap is a LIFO stack of fixed-size values (BPF_MAP_TYPE_STACK). The
// Collector uses one per task to handle recursive operators: BEGIN pushes an
// OU invocation entry, FEATURES pops and type-checks it (paper §5.2).
type StackMap struct {
	name       string
	valueSize  int
	maxEntries int

	mu    sync.Mutex
	items [][]byte
}

// NewStackMap creates a stack map holding at most maxEntries values.
func NewStackMap(name string, valueSize, maxEntries int) *StackMap {
	return &StackMap{name: name, valueSize: valueSize, maxEntries: maxEntries}
}

// Name returns the map name.
func (s *StackMap) Name() string { return s.name }

// KeySize returns 0: stacks are keyless.
func (s *StackMap) KeySize() int { return 0 }

// ValueSize returns the element size in bytes.
func (s *StackMap) ValueSize() int { return s.valueSize }

// MaxEntries returns the capacity.
func (s *StackMap) MaxEntries() int { return s.maxEntries }

// Len returns the current depth.
func (s *StackMap) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Lookup returns the top of the stack without popping (peek), or nil when
// empty. The key is ignored.
func (s *StackMap) Lookup(key []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return nil
	}
	return s.items[len(s.items)-1]
}

// Update pushes a value (the key is ignored).
func (s *StackMap) Update(key, value []byte) error {
	return s.Push(value)
}

// Delete pops and discards the top element.
func (s *StackMap) Delete(key []byte) bool {
	_, err := s.Pop()
	return err == nil
}

// Push copies value onto the stack.
func (s *StackMap) Push(value []byte) error {
	if len(value) != s.valueSize {
		return ErrBadValSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) >= s.maxEntries {
		return ErrMapFull
	}
	v := make([]byte, s.valueSize)
	copy(v, value)
	s.items = append(s.items, v)
	return nil
}

// Pop removes and returns the top element.
func (s *StackMap) Pop() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return nil, ErrStackEmpty
	}
	v := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return v, nil
}

// Clear empties the stack (the Collector's state-machine reset, §5.1).
func (s *StackMap) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = s.items[:0]
}

// PerTaskMap stores one fixed-size value per task PID; it stands in for
// BPF per-CPU / per-task storage used to snapshot probe results at BEGIN
// markers without cross-thread synchronization (the "no back pressure"
// property, paper §3).
type PerTaskMap struct {
	name      string
	valueSize int

	mu sync.Mutex
	m  map[uint64][]byte
}

// NewPerTaskMap creates an empty per-task map.
func NewPerTaskMap(name string, valueSize int) *PerTaskMap {
	return &PerTaskMap{name: name, valueSize: valueSize, m: make(map[uint64][]byte)}
}

// Name returns the map name.
func (p *PerTaskMap) Name() string { return p.name }

// KeySize returns 8 (the PID).
func (p *PerTaskMap) KeySize() int { return 8 }

// ValueSize returns the per-task slot size.
func (p *PerTaskMap) ValueSize() int { return p.valueSize }

// MaxEntries is unbounded for per-task storage; it returns 0.
func (p *PerTaskMap) MaxEntries() int { return 0 }

// Len returns the number of tasks with a slot.
func (p *PerTaskMap) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

// Lookup returns the slot for the PID in key, creating a zeroed slot on
// first access (per-CPU semantics: the slot always exists).
func (p *PerTaskMap) Lookup(key []byte) []byte {
	if len(key) != 8 {
		return nil
	}
	pid := U64(key)
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.m[pid]
	if !ok {
		v = make([]byte, p.valueSize)
		p.m[pid] = v
	}
	return v
}

// Update copies value into the PID's slot.
func (p *PerTaskMap) Update(key, value []byte) error {
	if len(value) != p.valueSize {
		return ErrBadValSize
	}
	dst := p.Lookup(key)
	if dst == nil {
		return ErrBadKeySize
	}
	copy(dst, value)
	return nil
}

// Range calls fn for every existing slot under the map lock (keys are the
// slot ids, values the live buffers); returning false stops the walk. Like
// HashMap.Range it serves user-space maintenance sweeps, and fn must not
// call back into the map.
func (p *PerTaskMap) Range(fn func(key uint64, value []byte) bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, v := range p.m {
		if !fn(k, v) {
			return
		}
	}
}

// Delete removes the PID's slot.
func (p *PerTaskMap) Delete(key []byte) bool {
	if len(key) != 8 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pid := U64(key)
	_, ok := p.m[pid]
	delete(p.m, pid)
	return ok
}
