package bpf

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
)

// Map errors.
var (
	ErrMapFull    = errors.New("bpf: map full")
	ErrStackEmpty = errors.New("bpf: stack map empty")
	ErrBadKeySize = errors.New("bpf: bad key size")
	ErrBadValSize = errors.New("bpf: bad value size")
)

// Map is the interface all BPF map types implement. Values returned by
// Lookup alias the stored bytes, so in-place mutation through a map-value
// pointer persists — the same semantics Collector programs rely on to
// accumulate metrics across marker events (paper §3.2).
type Map interface {
	Name() string
	KeySize() int
	ValueSize() int
	MaxEntries() int
	Len() int
	// Lookup returns the stored value bytes or nil if absent.
	Lookup(key []byte) []byte
	// Update inserts or replaces the value for key.
	Update(key, value []byte) error
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) bool
}

// U64Key encodes a uint64 as a little-endian 8-byte map key.
func U64Key(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// U64 reads a little-endian uint64 from the front of b.
func U64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// PutU64 writes v into the first 8 bytes of b.
func PutU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// HashMap is the general-purpose BPF hash map.
type HashMap struct {
	name       string
	keySize    int
	valueSize  int
	maxEntries int

	mu sync.Mutex
	m  map[string][]byte
	// count mirrors len(m), maintained under mu but readable lock-free:
	// Collector programs issue unconditional cleanup deletes and probe
	// lookups against maps that are empty in steady state, and a count of
	// zero at the atomic load is a valid linearization of "not present" —
	// those calls skip the lock entirely.
	count atomic.Int64
}

// NewHashMap creates a hash map with fixed key/value sizes.
func NewHashMap(name string, keySize, valueSize, maxEntries int) *HashMap {
	return &HashMap{
		name: name, keySize: keySize, valueSize: valueSize,
		maxEntries: maxEntries, m: make(map[string][]byte),
	}
}

// Name returns the map name.
func (h *HashMap) Name() string { return h.name }

// KeySize returns the fixed key size in bytes.
func (h *HashMap) KeySize() int { return h.keySize }

// ValueSize returns the fixed value size in bytes.
func (h *HashMap) ValueSize() int { return h.valueSize }

// MaxEntries returns the capacity.
func (h *HashMap) MaxEntries() int { return h.maxEntries }

// Len returns the current entry count.
func (h *HashMap) Len() int {
	return int(h.count.Load())
}

// Lookup returns the value stored for key (aliasing the internal buffer),
// or nil if absent or the key is the wrong size.
func (h *HashMap) Lookup(key []byte) []byte {
	if len(key) != h.keySize || h.count.Load() == 0 {
		return nil
	}
	h.mu.Lock()
	v := h.m[string(key)] // string(key) here does not allocate
	h.mu.Unlock()
	return v
}

// Update inserts or replaces the value for key (the value is copied). An
// existing slot is overwritten in place — consistent with the aliasing
// Lookup contract, a map-value pointer observes the update — which keeps
// the marker hot path free of per-update allocations.
func (h *HashMap) Update(key, value []byte) error {
	if len(key) != h.keySize {
		return ErrBadKeySize
	}
	if len(value) != h.valueSize {
		return ErrBadValSize
	}
	h.mu.Lock()
	if dst, ok := h.m[string(key)]; ok {
		copy(dst, value)
		h.mu.Unlock()
		return nil
	}
	if len(h.m) >= h.maxEntries {
		h.mu.Unlock()
		return ErrMapFull
	}
	v := make([]byte, h.valueSize)
	copy(v, value)
	h.m[string(key)] = v
	h.count.Store(int64(len(h.m)))
	h.mu.Unlock()
	return nil
}

// Range calls fn for every entry under the map lock with a copy of the key
// and the live value buffer; returning false stops the walk. It exists for
// user-space sweeps over kernel-written state — the Collector reaper scans
// in-flight OU entries for dead task generations. The iteration order is
// unspecified; callers needing determinism must sort what they collect.
func (h *HashMap) Range(fn func(key, value []byte) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for k, v := range h.m {
		if !fn([]byte(k), v) {
			return
		}
	}
}

// Delete removes key.
func (h *HashMap) Delete(key []byte) bool {
	if len(key) != h.keySize || h.count.Load() == 0 {
		return false
	}
	h.mu.Lock()
	_, ok := h.m[string(key)]
	if ok {
		delete(h.m, string(key))
		h.count.Store(int64(len(h.m)))
	}
	h.mu.Unlock()
	return ok
}

// ArrayMap is a fixed-size array of values indexed by a uint64 key. All
// slots exist from creation (like BPF_MAP_TYPE_ARRAY).
type ArrayMap struct {
	name      string
	valueSize int
	values    [][]byte
}

// NewArrayMap creates an array map with n preallocated zeroed slots.
func NewArrayMap(name string, valueSize, n int) *ArrayMap {
	vals := make([][]byte, n)
	for i := range vals {
		vals[i] = make([]byte, valueSize)
	}
	return &ArrayMap{name: name, valueSize: valueSize, values: vals}
}

// Name returns the map name.
func (a *ArrayMap) Name() string { return a.name }

// KeySize returns 8 (uint64 index).
func (a *ArrayMap) KeySize() int { return 8 }

// ValueSize returns the slot size in bytes.
func (a *ArrayMap) ValueSize() int { return a.valueSize }

// MaxEntries returns the slot count.
func (a *ArrayMap) MaxEntries() int { return len(a.values) }

// Len returns the slot count (array slots always exist).
func (a *ArrayMap) Len() int { return len(a.values) }

// Lookup returns the slot for the index encoded in key, or nil if out of
// range.
func (a *ArrayMap) Lookup(key []byte) []byte {
	if len(key) != 8 {
		return nil
	}
	i := U64(key)
	if i >= uint64(len(a.values)) {
		return nil
	}
	return a.values[i]
}

// Update copies value into the indexed slot.
func (a *ArrayMap) Update(key, value []byte) error {
	if len(value) != a.valueSize {
		return ErrBadValSize
	}
	dst := a.Lookup(key)
	if dst == nil {
		return ErrBadKeySize
	}
	copy(dst, value)
	return nil
}

// Delete zeroes the indexed slot (array entries cannot be removed).
func (a *ArrayMap) Delete(key []byte) bool {
	dst := a.Lookup(key)
	if dst == nil {
		return false
	}
	for i := range dst {
		dst[i] = 0
	}
	return true
}

// StackMap is a LIFO stack of fixed-size values (BPF_MAP_TYPE_STACK). The
// Collector uses one per task to handle recursive operators: BEGIN pushes an
// OU invocation entry, FEATURES pops and type-checks it (paper §5.2).
//
// Elements live in one flat backing array (slot i at [i*valueSize,
// (i+1)*valueSize)): pushes past the high-water mark grow it once and then
// reuse the capacity forever, so the marker hot path allocates nothing.
// Pop and Lookup return views into the backing — a popped view is only
// valid until the next Push, which is why both in-kernel helpers copy the
// element out immediately.
type StackMap struct {
	name       string
	valueSize  int
	maxEntries int

	mu    sync.Mutex
	data  []byte
	depth int
}

// NewStackMap creates a stack map holding at most maxEntries values.
func NewStackMap(name string, valueSize, maxEntries int) *StackMap {
	return &StackMap{name: name, valueSize: valueSize, maxEntries: maxEntries}
}

// Name returns the map name.
func (s *StackMap) Name() string { return s.name }

// KeySize returns 0: stacks are keyless.
func (s *StackMap) KeySize() int { return 0 }

// ValueSize returns the element size in bytes.
func (s *StackMap) ValueSize() int { return s.valueSize }

// MaxEntries returns the capacity.
func (s *StackMap) MaxEntries() int { return s.maxEntries }

// Len returns the current depth.
func (s *StackMap) Len() int {
	s.mu.Lock()
	n := s.depth
	s.mu.Unlock()
	return n
}

// Lookup returns the top of the stack without popping (peek), or nil when
// empty. The key is ignored.
func (s *StackMap) Lookup(key []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.depth == 0 {
		return nil
	}
	return s.data[(s.depth-1)*s.valueSize : s.depth*s.valueSize]
}

// Update pushes a value (the key is ignored).
func (s *StackMap) Update(key, value []byte) error {
	return s.Push(value)
}

// Delete pops and discards the top element.
func (s *StackMap) Delete(key []byte) bool {
	_, err := s.Pop()
	return err == nil
}

// Push copies value onto the stack.
func (s *StackMap) Push(value []byte) error {
	if len(value) != s.valueSize {
		return ErrBadValSize
	}
	s.mu.Lock()
	if s.depth >= s.maxEntries {
		s.mu.Unlock()
		return ErrMapFull
	}
	s.data = append(s.data[:s.depth*s.valueSize], value...)
	s.depth++
	s.mu.Unlock()
	return nil
}

// Pop removes and returns the top element. The returned view is valid
// until the next Push reuses the slot; callers that retain it must copy.
func (s *StackMap) Pop() ([]byte, error) {
	s.mu.Lock()
	if s.depth == 0 {
		s.mu.Unlock()
		return nil, ErrStackEmpty
	}
	s.depth--
	v := s.data[s.depth*s.valueSize : (s.depth+1)*s.valueSize : (s.depth+1)*s.valueSize]
	s.mu.Unlock()
	return v, nil
}

// Clear empties the stack (the Collector's state-machine reset, §5.1).
func (s *StackMap) Clear() {
	s.mu.Lock()
	s.depth = 0
	s.mu.Unlock()
}

// PerTaskMap stores one fixed-size value per task PID; it stands in for
// BPF per-CPU / per-task storage used to snapshot probe results at BEGIN
// markers without cross-thread synchronization (the "no back pressure"
// property, paper §3).
//
// The PID→slot index is copy-on-write: the hot path (every marker hit
// looks up its task's slot) reads an immutable snapshot with no lock, and
// only the first access by a new PID — or a Delete — takes the mutex to
// publish a rebuilt snapshot. Slot buffers are shared across snapshots,
// so in-place mutation through a looked-up slot persists as before.
type PerTaskMap struct {
	name      string
	valueSize int

	mu   sync.Mutex // serializes snapshot rebuilds
	snap atomic.Pointer[map[uint64][]byte]
}

// NewPerTaskMap creates an empty per-task map.
func NewPerTaskMap(name string, valueSize int) *PerTaskMap {
	p := &PerTaskMap{name: name, valueSize: valueSize}
	m := make(map[uint64][]byte)
	p.snap.Store(&m)
	return p
}

// Name returns the map name.
func (p *PerTaskMap) Name() string { return p.name }

// KeySize returns 8 (the PID).
func (p *PerTaskMap) KeySize() int { return 8 }

// ValueSize returns the per-task slot size.
func (p *PerTaskMap) ValueSize() int { return p.valueSize }

// MaxEntries is unbounded for per-task storage; it returns 0.
func (p *PerTaskMap) MaxEntries() int { return 0 }

// Len returns the number of tasks with a slot.
func (p *PerTaskMap) Len() int {
	return len(*p.snap.Load())
}

// Lookup returns the slot for the PID in key, creating a zeroed slot on
// first access (per-CPU semantics: the slot always exists).
func (p *PerTaskMap) Lookup(key []byte) []byte {
	if len(key) != 8 {
		return nil
	}
	pid := U64(key)
	if v, ok := (*p.snap.Load())[pid]; ok {
		return v
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := *p.snap.Load() // re-check: another writer may have added it
	if v, ok := cur[pid]; ok {
		return v
	}
	next := make(map[uint64][]byte, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	v := make([]byte, p.valueSize)
	next[pid] = v
	p.snap.Store(&next)
	return v
}

// Update copies value into the PID's slot.
func (p *PerTaskMap) Update(key, value []byte) error {
	if len(value) != p.valueSize {
		return ErrBadValSize
	}
	dst := p.Lookup(key)
	if dst == nil {
		return ErrBadKeySize
	}
	copy(dst, value)
	return nil
}

// Range calls fn for every slot in the current snapshot (keys are the
// slot ids, values the live buffers); returning false stops the walk.
// Like HashMap.Range it serves user-space maintenance sweeps; fn sees
// slots that existed when the walk started.
func (p *PerTaskMap) Range(fn func(key uint64, value []byte) bool) {
	for k, v := range *p.snap.Load() {
		if !fn(k, v) {
			return
		}
	}
}

// Delete removes the PID's slot.
func (p *PerTaskMap) Delete(key []byte) bool {
	if len(key) != 8 {
		return false
	}
	pid := U64(key)
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := *p.snap.Load()
	if _, ok := cur[pid]; !ok {
		return false
	}
	next := make(map[uint64][]byte, len(cur))
	for k, v := range cur {
		if k != pid {
			next[k] = v
		}
	}
	p.snap.Store(&next)
	return true
}
