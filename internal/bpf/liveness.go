package bpf

// Backward liveness and forward reaching-definitions over a verified
// program, computed from an Analysis. Both passes work on the *static*
// CFG (no feasibility pruning): using a superset of the real edges can
// only mark more things live / more definitions reaching, which is the
// conservative direction for the dead-code eliminator built on top.
//
// Liveness is tracked at two granularities: a register bitmask and a
// per-byte bitset over the 512-byte stack. Stack accesses are resolved
// through the Analysis pointer facts — a store through a pointer whose
// offset is exact kills exactly its bytes; an imprecise store kills
// nothing; an imprecise load uses every byte it might touch.

const stackWords = StackSize / 64

type stackSet [stackWords]uint64

func (s *stackSet) set(i int)      { s[i/64] |= 1 << (i % 64) }
func (s *stackSet) clear(i int)    { s[i/64] &^= 1 << (i % 64) }
func (s *stackSet) get(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }
func (s *stackSet) or(o *stackSet) {
	for i := range s {
		s[i] |= o[i]
	}
}

// Liveness holds, for every pc, the registers and stack bytes that may be
// read after the instruction executes (its live-out set).
type Liveness struct {
	regsOut  []uint16 // bit r: register r live after pc
	stackOut []stackSet
}

// LiveOutRegs returns the live-after register bitmask for pc.
func (l *Liveness) LiveOutRegs(pc int) uint16 { return l.regsOut[pc] }

// LiveOutStackByte reports whether stack byte idx (0 = deepest, rel.
// R10-StackSize) may be read after pc.
func (l *Liveness) LiveOutStackByte(pc, idx int) bool { return l.stackOut[pc].get(idx) }

// insnEffects describes one instruction's use/def sets for liveness.
type insnEffects struct {
	useRegs uint16
	defRegs uint16
	// Stack bytes read / exactly-written by this instruction.
	useStack  stackSet
	killStack stackSet
}

func regBit(r Reg) uint16 { return 1 << r }

// stackSpan marks bytes [lo, hi+size) (stack-relative offsets, < 0) in a
// set; exact is true when lo == hi, i.e. the access touches a single
// known span.
func markStackSpan(set *stackSet, lo, hi int64, size int) {
	start := lo + StackSize
	end := hi + int64(size) + StackSize
	if start < 0 {
		start = 0
	}
	if end > StackSize {
		end = StackSize
	}
	for i := start; i < end; i++ {
		set.set(int(i))
	}
}

// effects computes the use/def/kill sets of the instruction at pc, using
// the analysis in-state to resolve pointer targets. For unreached pcs the
// state is unavailable: treat stack effects maximally conservatively
// (use everything, kill nothing).
func (a *Analysis) effects(pc int) insnEffects {
	var e insnEffects
	in := a.prog.Insns[pc]
	st := &a.states[pc]
	reached := st.valid

	stackPtr := func(r Reg) (regState, bool) {
		if !reached {
			return regState{}, false
		}
		rs := st.regs[r]
		return rs, rs.kind == rkPtrStack
	}
	useAllStack := func() {
		for i := range e.useStack {
			e.useStack[i] = ^uint64(0)
		}
	}

	switch {
	case in.Op == OpExit:
		e.useRegs = regBit(R0)

	case in.Op == OpMovImm:
		e.defRegs = regBit(in.Dst)
	case in.Op == OpMovReg:
		e.useRegs = regBit(in.Src)
		e.defRegs = regBit(in.Dst)
	case in.Op == OpNeg:
		e.useRegs = regBit(in.Dst)
		e.defRegs = regBit(in.Dst)
	case isALU(in.Op):
		e.useRegs = regBit(in.Dst)
		if isRegSrc(in.Op) {
			e.useRegs |= regBit(in.Src)
		}
		e.defRegs = regBit(in.Dst)

	case in.Op == OpLoadMapPtr:
		e.defRegs = regBit(in.Dst)

	case in.Op == OpLoad:
		e.useRegs = regBit(in.Src)
		e.defRegs = regBit(in.Dst)
		if base, ok := stackPtr(in.Src); ok {
			markStackSpan(&e.useStack, base.lo+int64(in.Off), base.hi+int64(in.Off), 8)
		} else if !reached {
			useAllStack()
		}

	case in.Op == OpStore, in.Op == OpStoreImm:
		e.useRegs = regBit(in.Dst)
		if in.Op == OpStore {
			e.useRegs |= regBit(in.Src)
		}
		if base, ok := stackPtr(in.Dst); ok {
			if base.lo == base.hi {
				markStackSpan(&e.killStack, base.lo+int64(in.Off), base.hi+int64(in.Off), 8)
			}
			// An imprecise store kills nothing (weak update), and a
			// store never *uses* stack bytes.
		}
		// Stores through map-value pointers escape the invocation; the
		// stored register is already in useRegs.

	case in.Op == OpJa:
		// no effects
	case isCondJump(in.Op):
		e.useRegs = regBit(in.Dst)
		if isRegSrc(in.Op) {
			e.useRegs |= regBit(in.Src)
		}

	case in.Op == OpCall:
		spec, _ := HelperByID(in.Imm)
		argRegs := []Reg{R1, R2, R3, R4, R5}
		for i := range spec.Args {
			e.useRegs |= regBit(argRegs[i])
		}
		// R0 is defined; R1-R5 are clobbered (defined-to-garbage), which
		// for liveness is also a def.
		e.defRegs = regBit(R0) | regBit(R1) | regBit(R2) | regBit(R3) | regBit(R4) | regBit(R5)
		// Resolve helper stack-buffer reads/writes through the arg specs.
		if !reached {
			useAllStack()
			break
		}
		var constMap int32 = -1
		var sizedPtr regState
		sizedPtrSeen := false
		for i, kind := range spec.Args {
			r := argRegs[i]
			arg := st.regs[r]
			switch kind {
			case ArgConstMap:
				if arg.kind == rkConstMap {
					constMap = arg.mapIdx
				}
			case ArgPtrKey, ArgPtrValue:
				if constMap < 0 || arg.kind != rkPtrStack {
					continue
				}
				size := a.prog.Maps[constMap].KeySize()
				if kind == ArgPtrValue {
					size = a.prog.Maps[constMap].ValueSize()
				}
				if size == 0 {
					continue
				}
				// stack_pop writes its destination only when the pop
				// succeeds (vm.go leaves it untouched on failure), so a
				// prior store stays observable on the failure path: a
				// conditional write is a weak update that kills nothing,
				// mirroring the imprecise-store case. It does not read
				// the buffer either. Every other ptr arg is a read.
				if in.Imm != HelperStackPop || kind != ArgPtrValue {
					markStackSpan(&e.useStack, arg.lo, arg.hi, size)
				}
			case ArgPtrSized:
				if arg.kind == rkPtrStack {
					sizedPtr = arg
					sizedPtrSeen = true
				}
			case ArgSizeConst:
				if sizedPtrSeen && arg.kind == rkScalar && arg.vr.IsConst() {
					markStackSpan(&e.useStack, sizedPtr.lo, sizedPtr.hi, int(arg.vr.Const()))
				}
			}
		}
	}
	return e
}

// Liveness runs the backward may-live analysis to a fixpoint.
func (a *Analysis) Liveness() *Liveness {
	n := len(a.prog.Insns)
	lv := &Liveness{
		regsOut:  make([]uint16, n),
		stackOut: make([]stackSet, n),
	}
	liveInRegs := make([]uint16, n)
	liveInStack := make([]stackSet, n)

	// Predecessors over the static CFG.
	preds := make([][]int, n)
	for pc, in := range a.prog.Insns {
		for _, s := range cfgSuccs(in, pc) {
			preds[s] = append(preds[s], pc)
		}
	}
	eff := make([]insnEffects, n)
	for pc := range a.prog.Insns {
		eff[pc] = a.effects(pc)
	}

	// Worklist, seeded with every pc (effects alone create liveness).
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	for pc := n - 1; pc >= 0; pc-- {
		work = append(work, pc)
		inWork[pc] = true
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pc] = false

		// out = union of successors' in.
		var outRegs uint16
		var outStack stackSet
		for _, s := range cfgSuccs(a.prog.Insns[pc], pc) {
			outRegs |= liveInRegs[s]
			outStack.or(&liveInStack[s])
		}
		lv.regsOut[pc] = outRegs
		lv.stackOut[pc] = outStack

		// in = use ∪ (out − def/kill).
		e := &eff[pc]
		inRegs := e.useRegs | (outRegs &^ e.defRegs)
		inStack := outStack
		for i := range inStack {
			inStack[i] = e.useStack[i] | (inStack[i] &^ e.killStack[i])
		}
		if inRegs != liveInRegs[pc] || inStack != liveInStack[pc] {
			liveInRegs[pc] = inRegs
			liveInStack[pc] = inStack
			for _, p := range preds[pc] {
				if !inWork[p] {
					work = append(work, p)
					inWork[p] = true
				}
			}
		}
	}
	return lv
}

// Reaching-definition lattice per register: no def on any path, exactly
// one def site, or multiple def sites.
const (
	rdNone  = int32(-1)
	rdEntry = int32(-2) // defined before the program starts (R10)
	rdMulti = int32(-3)
)

// ReachingDefs maps, for every pc and register, the pc of the unique
// definition reaching the instruction (or rdNone/rdEntry/rdMulti).
type ReachingDefs struct {
	in [][numRegs]int32
}

// At returns the reaching definition of register r before pc.
func (rd *ReachingDefs) At(pc int, r Reg) int32 { return rd.in[pc][r] }

func rdJoin(a, b int32) int32 {
	switch {
	case a == b:
		return a
	case a == rdNone:
		return b
	case b == rdNone:
		return a
	default:
		return rdMulti
	}
}

// ReachingDefs runs the forward reaching-definitions analysis, collapsed
// to the none/unique/multi lattice which is all the optimizer and linter
// consume.
func (a *Analysis) ReachingDefs() *ReachingDefs {
	n := len(a.prog.Insns)
	rd := &ReachingDefs{in: make([][numRegs]int32, n)}
	for pc := range rd.in {
		for r := range rd.in[pc] {
			rd.in[pc][r] = rdNone
		}
	}
	var entry [numRegs]int32
	for r := range entry {
		entry[r] = rdNone
	}
	entry[R10] = rdEntry
	rd.in[0] = entry

	work := []int{0}
	seen := make([]bool, n)
	seen[0] = true
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]

		out := rd.in[pc]
		e := a.effects(pc)
		for r := Reg(0); r < numRegs; r++ {
			if e.defRegs&regBit(r) != 0 {
				out[r] = int32(pc)
			}
		}
		for _, s := range cfgSuccs(a.prog.Insns[pc], pc) {
			merged := rd.in[s]
			changed := !seen[s]
			for r := range merged {
				if !seen[s] {
					merged[r] = out[r]
					continue
				}
				j := rdJoin(merged[r], out[r])
				if j != merged[r] {
					merged[r] = j
					changed = true
				}
			}
			if changed {
				rd.in[s] = merged
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return rd
}
