// hw-migration: the paper's §6.4 scenario. The DBMS's behavior models
// were trained with offline runners on a small 6-core machine; the DBMS
// then migrates to a 40-core server. One minute of online collection on
// the new machine repairs the models without re-running the runners.
//
// Run: go run ./examples/hw-migration
package main

import (
	"fmt"
	"log"

	"tscout/internal/dbms"
	"tscout/internal/model"
	"tscout/internal/runner"
	"tscout/internal/sim"
	"tscout/internal/tscout"
	"tscout/internal/wal"
	"tscout/internal/workload"
)

func collectOffline(profile sim.HardwareProfile) []model.Point {
	srv, err := dbms.NewServer(dbms.Config{
		Profile: profile, Seed: 11, NoiseSigma: 0.04, Instrument: true,
		WAL: wal.Config{Synchronous: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := runner.RunAll(srv, runner.Config{}); err != nil {
		log.Fatal(err)
	}
	srv.TS.Processor().Drain(tscout.DrainOptions{})
	return model.FromTrainingPoints(srv.TS.Processor().Points(),
		[]float64{profile.ClockGHz * 1000})
}

func collectOnline(profile sim.HardwareProfile) []model.Point {
	srv, err := dbms.NewServer(dbms.Config{
		Profile: profile, Seed: 12, NoiseSigma: 0.04, Instrument: true,
		DisableFeedback: true,
		WAL:             wal.Config{GroupSize: 32, FlushIntervalNS: 200_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	gen := &workload.TPCC{Warehouses: 2, CustomersPerDistrict: 20,
		Items: 200, InitialOrdersPerDistrict: 20}
	if err := gen.Setup(srv); err != nil {
		log.Fatal(err)
	}
	srv.TS.Sampler().SetAllRates(100)
	if _, err := workload.Run(srv, gen, workload.Config{
		Terminals: 1, Transactions: 1500, Seed: 13,
	}); err != nil {
		log.Fatal(err)
	}
	return model.FromTrainingPoints(srv.TS.Processor().Points(),
		[]float64{profile.ClockGHz * 1000})
}

func main() {
	fmt.Println("Phase 1: offline runners on the ORIGINAL hardware (6-core, 12MB L3)...")
	offline := collectOffline(sim.SmallHW)

	fmt.Println("Phase 2: migrate to the NEW hardware (2x20-core, 27.5MB L3) and run TPC-C")
	fmt.Println("         with TScout enabled for one collection window...")
	online := collectOnline(sim.LargeHW)
	trainOn, testOn := model.SplitRows(online, 0.2, 14)

	trainer := model.Forest{Trees: 16, MaxDepth: 10, Seed: 7}
	fmt.Printf("\nprediction error on the NEW hardware (avg abs error per template):\n")
	fmt.Printf("%-18s %16s %16s\n", "subsystem", "stale offline", "offline+online")
	for _, sub := range tscout.AllSubsystems {
		offSub := model.FilterSub(offline, sub)
		trn := model.FilterSub(trainOn, sub)
		tst := model.FilterSub(testOn, sub)
		if len(tst) == 0 {
			continue
		}
		offSet, err := model.Train(offSub, trainer)
		if err != nil {
			log.Fatal(err)
		}
		combined, err := model.Train(append(append([]model.Point(nil), offSub...), trn...), trainer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %14.2fus %14.2fus\n", sub.String(),
			offSet.AvgAbsErrorByTemplate(tst), combined.AvgAbsErrorByTemplate(tst))
	}
	fmt.Println("\nThe disk writer gains the most: flush time is bound to the storage device,")
	fmt.Println("and the models have no hardware context features to transfer it (paper §6.4).")
}
