// Quickstart: annotate one operating unit with TScout markers and watch a
// training-data point come out the other end.
//
// This example uses the framework directly (no DBMS): it registers a
// "sequential scan"-style OU, deploys TScout — which code-generates and
// verifies the kernel-space Collector — executes the OU with BEGIN/END/
// FEATURES markers around simulated work, and prints the training point
// the Processor assembles.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tscout/internal/kernel"
	"tscout/internal/sim"
	"tscout/internal/tscout"
)

func main() {
	// A simulated machine and kernel (the paper's large evaluation box).
	k := kernel.New(sim.LargeHW, 42, 0.02)

	// 1. Declare the framework and the OU's input features (Setup Phase).
	ts := tscout.New(k, tscout.Config{Mode: tscout.KernelContinuous, Seed: 1})
	scan := ts.MustRegisterOU(tscout.OUDef{
		ID:        1,
		Name:      "seq_scan",
		Subsystem: tscout.SubsystemExecutionEngine,
		Features:  []string{"num_rows", "row_bytes"},
	}, tscout.ResourceSet{CPU: true, Memory: true, Disk: true})

	// 2. Deploy: codegen emits the Collector BPF programs, the verifier
	//    checks them, and they attach to the marker tracepoints.
	if err := ts.Deploy(); err != nil {
		log.Fatal(err)
	}
	ts.Sampler().SetAllRates(100) // collect every event for the demo

	col := ts.CollectorFor(tscout.SubsystemExecutionEngine)
	fmt.Printf("generated Collector: BEGIN=%d END=%d FEATURES=%d instructions (all verified)\n",
		len(col.Begin.Program().Insns),
		len(col.End.Program().Insns),
		len(col.Features.Program().Insns))

	// 3. Runtime Phase: a worker thread executes the annotated OU.
	worker := k.NewTask("worker")
	const rows, rowBytes = 10000, 128

	ts.BeginEvent(worker, tscout.SubsystemExecutionEngine) // per-query sampling decision
	scan.Begin(worker)
	worker.Charge(sim.Work{ // the scan's actual work
		Instructions:    40 * rows,
		BytesTouched:    rows * rowBytes,
		WorkingSetBytes: rows * rowBytes,
		AllocBytes:      4096,
	})
	scan.End(worker)
	scan.Features(worker, 4096, rows, rowBytes)

	// 4. The Processor drains the perf ring buffer into training points.
	ts.Processor().Drain(tscout.DrainOptions{})
	for _, p := range ts.Processor().Points() {
		fmt.Printf("\ntraining point for %q (%s):\n", p.OUName, p.Subsystem)
		for i, name := range p.FeatureNames {
			fmt.Printf("  feature %-10s = %.0f\n", name, p.Features[i])
		}
		m := p.Metrics
		fmt.Printf("  metrics: elapsed=%.1fus cycles=%d instructions=%d cache_misses=%d alloc=%dB\n",
			float64(m.ElapsedNS)/1000, m.Cycles, m.Instructions, m.CacheMisses, m.AllocBytes)
	}
	fmt.Printf("\ncollection overhead on the worker: %dns kernel-space, %dns user-space\n",
		worker.KernelInstrumentationNS, worker.UserInstrumentationNS)
}
