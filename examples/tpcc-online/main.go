// tpcc-online: collect online training data from a TPC-C run and show how
// it improves the DBMS's behavior models over offline runner data — the
// paper's Figure 2 experiment in miniature.
//
// Run: go run ./examples/tpcc-online
package main

import (
	"fmt"
	"log"

	"tscout/internal/dbms"
	"tscout/internal/model"
	"tscout/internal/runner"
	"tscout/internal/sim"
	"tscout/internal/tscout"
	"tscout/internal/wal"
	"tscout/internal/workload"
)

func main() {
	// --- Offline data: runners on an idle, synchronous-WAL server ------
	offSrv, err := dbms.NewServer(dbms.Config{
		Seed: 1, NoiseSigma: 0.04, Instrument: true,
		WAL: wal.Config{Synchronous: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := runner.RunAll(offSrv, runner.Config{}); err != nil {
		log.Fatal(err)
	}
	offSrv.TS.Processor().Drain(tscout.DrainOptions{})
	hw := []float64{sim.LargeHW.ClockGHz * 1000}
	offline := model.FromTrainingPoints(offSrv.TS.Processor().Points(), hw)
	fmt.Printf("offline runner data: %d points\n", len(offline))

	// --- Online data: instrumented TPC-C with 16 clients ---------------
	onSrv, err := dbms.NewServer(dbms.Config{
		Seed: 2, NoiseSigma: 0.04, Instrument: true, DisableFeedback: true,
		WAL: wal.Config{GroupSize: 32, FlushIntervalNS: 200_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	gen := &workload.TPCC{Warehouses: 2, CustomersPerDistrict: 20,
		Items: 200, InitialOrdersPerDistrict: 20}
	if err := gen.Setup(onSrv); err != nil {
		log.Fatal(err)
	}
	onSrv.TS.Sampler().SetAllRates(100)
	res, err := workload.Run(onSrv, gen, workload.Config{
		Terminals: 16, Transactions: 2000, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	online := model.FromTrainingPoints(onSrv.TS.Processor().Points(), hw)
	fmt.Printf("online TPC-C data:   %d points (%.0f txn/s, %.1f%% aborts)\n",
		len(online), res.ThroughputTPS,
		100*float64(res.Aborted)/float64(res.Completed+res.Aborted))

	// --- Train per-OU models and compare ---------------------------------
	trainer := model.Forest{Trees: 16, MaxDepth: 10, Seed: 7}
	fmt.Printf("\n%-18s %14s %14s %10s\n", "subsystem", "offline-only", "with-online", "reduction")
	for _, sub := range tscout.AllSubsystems {
		offSub := model.FilterSub(offline, sub)
		trainOn, testOn := model.SplitRows(model.FilterSub(online, sub), 0.2, 9)
		if len(testOn) == 0 {
			continue
		}
		offSet, err := model.Train(offSub, trainer)
		if err != nil {
			log.Fatal(err)
		}
		combined, err := model.Train(append(append([]model.Point(nil), offSub...), trainOn...), trainer)
		if err != nil {
			log.Fatal(err)
		}
		offErr := offSet.AvgAbsErrorByTemplate(testOn)
		onErr := combined.AvgAbsErrorByTemplate(testOn)
		fmt.Printf("%-18s %12.2fus %12.2fus %9.1f%%\n",
			sub.String(), offErr, onErr, 100*(offErr-onErr)/offErr)
	}
	fmt.Println("\nThe WAL subsystems improve the most: their behavior depends on group-commit")
	fmt.Println("batching that the offline runners never observe (paper §6.5).")
}
