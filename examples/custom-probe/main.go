// custom-probe: instrument a new DBMS subsystem with TScout, combining
// the built-in kernel-level probes with a user-level memory probe, fused
// feature vectors for a compiled pipeline (§5.2), and live per-subsystem
// sampling-rate adjustment (§5.3).
//
// The "subsystem" here is a toy garbage collector with two OUs: a mark
// pass and a sweep pass that the GC runs back-to-back under one
// measurement, as a JIT-fused pipeline would.
//
// Run: go run ./examples/custom-probe
package main

import (
	"fmt"
	"log"

	"tscout/internal/kernel"
	"tscout/internal/sim"
	"tscout/internal/tscout"
)

const (
	ouGCPipeline tscout.OUID = 300
	ouGCMark     tscout.OUID = 301
	ouGCSweep    tscout.OUID = 302
)

func main() {
	k := kernel.New(sim.LargeHW, 5, 0.02)
	ts := tscout.New(k, tscout.Config{Seed: 5})

	// The GC subsystem piggybacks on the log-serializer subsystem slot's
	// sibling: for a real integration you would extend SubsystemID; here
	// we reuse the execution engine's Collector with our own OUs.
	pipeline := ts.MustRegisterOU(tscout.OUDef{
		ID: ouGCPipeline, Name: "gc_pipeline",
		Subsystem: tscout.SubsystemExecutionEngine,
		Features:  []string{"num_ous"},
	}, tscout.ResourceSet{CPU: true, Memory: true})
	for id, name := range map[tscout.OUID]string{ouGCMark: "gc_mark", ouGCSweep: "gc_sweep"} {
		ts.MustRegisterOU(tscout.OUDef{
			ID: id, Name: name,
			Subsystem: tscout.SubsystemExecutionEngine,
			Features:  []string{"num_objects"},
		}, tscout.ResourceSet{CPU: true, Memory: true})
	}
	if err := ts.Deploy(); err != nil {
		log.Fatal(err)
	}
	ts.Sampler().SetRate(tscout.SubsystemExecutionEngine, 100)

	// Split fused metrics proportionally to each OU's object count — the
	// role the offline per-OU models play in the paper's preprocessing.
	ts.Processor().SetSplitter(func(ou tscout.OUID, f []float64) float64 {
		if ou == ouGCSweep {
			return f[0] * 2 // sweeping costs ~2x per object
		}
		return f[0]
	})

	gc := k.NewTask("gc-thread")
	runGC := func(objects int64) {
		ts.BeginEvent(gc, tscout.SubsystemExecutionEngine)
		pipeline.Begin(gc)
		// Mark then sweep under ONE measurement (fused pipeline).
		gc.Charge(sim.Work{Instructions: 60 * float64(objects), BytesTouched: 48 * float64(objects),
			WorkingSetBytes: 48 * float64(objects), RandomAccessFraction: 0.8})
		gc.Charge(sim.Work{Instructions: 120 * float64(objects), BytesTouched: 64 * float64(objects),
			AllocBytes: -0, WorkingSetBytes: 64 * float64(objects)})
		pipeline.End(gc)
		// The user-level memory probe reports bytes reclaimed; the fused
		// FEATURES record carries each OU's feature vector.
		if err := pipeline.FeaturesVector(gc, 48*objects, []tscout.FusedPart{
			{OU: ouGCMark, Features: []uint64{uint64(objects)}},
			{OU: ouGCSweep, Features: []uint64{uint64(objects)}},
		}); err != nil {
			log.Fatal(err)
		}
	}

	for _, n := range []int64{1000, 5000, 20000} {
		runGC(n)
	}
	ts.Processor().Drain(tscout.DrainOptions{})
	fmt.Println("fused GC samples split into per-OU training points:")
	for _, p := range ts.Processor().Points() {
		fmt.Printf("  %-10s objects=%6.0f elapsed=%8.1fus alloc=%dB\n",
			p.OUName, p.Features[0], float64(p.Metrics.ElapsedNS)/1000, p.Metrics.AllocBytes)
	}

	// Live rate adjustment: crank the subsystem down to 10% and observe
	// the collection volume drop — no redeployment needed (§5.3, §5.4).
	ts.Processor().Reset()
	ts.Sampler().SetRate(tscout.SubsystemExecutionEngine, 10)
	for i := 0; i < 100; i++ {
		runGC(1000)
	}
	ts.Processor().Drain(tscout.DrainOptions{})
	fmt.Printf("\nat a 10%% sampling rate, 100 GC runs produced %d fused samples (~10 expected)\n",
		len(ts.Processor().Points())/2)

	// The marker state machine guards against instrumentation bugs.
	ts.Sampler().SetRate(tscout.SubsystemExecutionEngine, 100)
	bad := k.NewTask("buggy-thread")
	ts.BeginEvent(bad, tscout.SubsystemExecutionEngine)
	pipeline.End(bad) // END without BEGIN
	col := ts.CollectorFor(tscout.SubsystemExecutionEngine)
	fmt.Printf("marker-order violations detected in kernel space: %d\n", col.ErrorCount())
}
