package main

import (
	"fmt"
	"strings"

	"tscout/internal/bpf"
	"tscout/internal/tscout"
)

// formatProcessorStats renders the Processor's self-observability snapshot
// as the `tsctl stats` telemetry block: one row per drain shard (kernel
// subsystems then the user queue), followed by the budget and
// flush-queue footer. Split from main so the layout is unit-testable.
func formatProcessorStats(st tscout.ProcessorStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %10s %10s %8s %8s %8s %8s\n",
		"shard", "submitted", "drained", "dropped", "decerr", "padded", "trunc", "points")
	shardRow := func(name string, s tscout.SubsystemStats) {
		fmt.Fprintf(&b, "%-18s %10d %10d %10d %8d %8d %8d %8d\n",
			name, s.Submitted, s.Drained, s.Dropped,
			s.DecodeErrors, s.PaddedFeatures, s.TruncatedFeatures, s.Points)
	}
	for _, sub := range tscout.AllSubsystems {
		shardRow(sub.String(), st.Kernel[sub])
	}
	shardRow("user-queue", st.User)
	fmt.Fprintf(&b, "\npolls=%d parallelism=%d global-budget=%d effective-budget=%d\n",
		st.Polls, st.Parallelism, st.GlobalBudget, st.EffectiveBudget)
	fmt.Fprintf(&b, "feedback-actions=%d flush-queue-drops=%d pending-flush=%d processed=%d\n",
		st.FeedbackActions, st.FlushQueueDrops, st.PendingFlush, st.Processed)
	fmt.Fprintf(&b, "drop-fraction=%.3f\n", st.DropFraction())

	// Codegen savings only render when the optimizer ran, so deployments
	// without it (and the zero-value snapshot) keep the compact layout.
	optimized := false
	for i := range st.Codegen {
		optimized = optimized || st.Codegen[i].Enabled
	}
	if optimized {
		fmt.Fprintf(&b, "\ncodegen insns (before->after per program):\n")
		progCol := func(s tscout.CollectorOptStats) [3]string {
			format := func(o bpf.OptStats) string {
				return fmt.Sprintf("%d->%d", o.BeforeInsns, o.AfterInsns)
			}
			return [3]string{format(s.Begin), format(s.End), format(s.Features)}
		}
		fmt.Fprintf(&b, "%-18s %10s %10s %10s %8s\n", "subsystem", "begin", "end", "features", "saved")
		for _, sub := range tscout.AllSubsystems {
			cg := st.Codegen[sub]
			if !cg.Enabled {
				continue
			}
			cols := progCol(cg)
			fmt.Fprintf(&b, "%-18s %10s %10s %10s %8d\n",
				sub.String(), cols[0], cols[1], cols[2], cg.Saved())
		}
		fmt.Fprintf(&b, "total-insns-saved=%d\n", st.TotalInsnsSaved())
	}
	return b.String()
}
