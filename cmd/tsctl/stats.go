package main

import (
	"fmt"
	"strings"

	"tscout/internal/bpf"
	"tscout/internal/tscout"
)

// formatProcessorStats renders the Processor's self-observability snapshot
// as the `tsctl stats` telemetry block: one row per drain shard (kernel
// subsystems then the user queue), followed by the budget and
// flush-queue footer. Split from main so the layout is unit-testable.
func formatProcessorStats(st tscout.ProcessorStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %10s %10s %8s %8s %8s %8s\n",
		"shard", "submitted", "drained", "dropped", "decerr", "padded", "trunc", "points")
	shardRow := func(name string, s tscout.SubsystemStats) {
		fmt.Fprintf(&b, "%-18s %10d %10d %10d %8d %8d %8d %8d\n",
			name, s.Submitted, s.Drained, s.Dropped,
			s.DecodeErrors, s.PaddedFeatures, s.TruncatedFeatures, s.Points)
	}
	for _, sub := range tscout.AllSubsystems {
		shardRow(sub.String(), st.Kernel[sub])
	}
	shardRow("user-queue", st.User)
	fmt.Fprintf(&b, "\npolls=%d parallelism=%d global-budget=%d effective-budget=%d\n",
		st.Polls, st.Parallelism, st.GlobalBudget, st.EffectiveBudget)
	fmt.Fprintf(&b, "feedback-actions=%d flush-queue-drops=%d pending-flush=%d processed=%d\n",
		st.FeedbackActions, st.FlushQueueDrops, st.PendingFlush, st.Processed)
	fmt.Fprintf(&b, "drop-fraction=%.3f\n", st.DropFraction())

	// Per-CPU ring telemetry only renders on multi-CPU deployments (with
	// one CPU the single ring duplicates the shard aggregate above), and
	// only rings that saw traffic get a row — a 40-core kernel has 160
	// rings and the quiet ones are noise. A footer counts what was elided.
	multiCPU := false
	for i := range st.Rings {
		multiCPU = multiCPU || len(st.Rings[i]) > 1
	}
	if multiCPU {
		fmt.Fprintf(&b, "\nper-cpu rings (active only):\n")
		fmt.Fprintf(&b, "%-18s %5s %10s %10s %10s\n", "subsystem", "cpu", "submitted", "drained", "dropped")
		quiet := 0
		for _, sub := range tscout.AllSubsystems {
			for cpu, rs := range st.Rings[sub] {
				if rs.Submitted == 0 && rs.Drained == 0 && rs.Dropped == 0 {
					quiet++
					continue
				}
				fmt.Fprintf(&b, "%-18s %5d %10d %10d %10d\n",
					sub.String(), cpu, rs.Submitted, rs.Drained, rs.Dropped)
			}
		}
		fmt.Fprintf(&b, "quiet-rings=%d\n", quiet)
	}

	// Batch-size histogram: skipped while all buckets are zero (nothing
	// has been drained yet, or the snapshot predates the batched drain).
	anyBatch := false
	for _, n := range st.BatchSizeHist {
		anyBatch = anyBatch || n > 0
	}
	if anyBatch {
		fmt.Fprintf(&b, "\nbatch-size hist:")
		for i, n := range st.BatchSizeHist {
			fmt.Fprintf(&b, " %s=%d", tscout.BatchHistLabels[i], n)
		}
		fmt.Fprintf(&b, "\n")
	}

	// Resilience telemetry (orphaned in-flight OUs, corrupt-metric
	// discards, wraparound clamps, sink retries) only renders once any
	// counter is nonzero: a healthy fault-free deployment keeps the
	// compact layout, and a nonzero section is itself the signal that
	// samples were lost to faults rather than archived.
	orphans := st.TotalOrphans()
	var wrapClamps int64
	for i := range st.Kernel {
		wrapClamps += st.Kernel[i].WrapClamps
	}
	wrapClamps += st.User.WrapClamps
	resil := orphans.Total() + st.TotalCorruptDiscards() + wrapClamps +
		st.SinkRetries + st.SinkRetryDrops + int64(st.PendingRetry) +
		st.TotalRuntimeFaults()
	if resil > 0 {
		fmt.Fprintf(&b, "\nresilience:\n")
		fmt.Fprintf(&b, "orphans: begin-no-end=%d end-no-begin=%d torn-migration=%d stale-reaped=%d\n",
			orphans.BeginWithoutEnd, orphans.EndWithoutBegin,
			orphans.TornMigration, orphans.StaleReaped)
		fmt.Fprintf(&b, "corrupt-discards=%d wrap-clamps=%d sink-retries=%d sink-retry-drops=%d pending-retry=%d\n",
			st.TotalCorruptDiscards(), wrapClamps,
			st.SinkRetries, st.SinkRetryDrops, st.PendingRetry)
		if rf := st.TotalRuntimeFaults(); rf > 0 {
			// A verified program faulting at runtime is a verifier or JIT
			// bug, not operational noise — call it out unmistakably.
			fmt.Fprintf(&b, "RUNTIME-FAULTS=%d (verified programs faulted in marker context — verifier/JIT bug)\n", rf)
		}
	}

	// Codegen savings only render when the optimizer ran, so deployments
	// without it (and the zero-value snapshot) keep the compact layout.
	optimized := false
	for i := range st.Codegen {
		optimized = optimized || st.Codegen[i].Enabled
	}
	if optimized {
		fmt.Fprintf(&b, "\ncodegen insns (before->after per program):\n")
		progCol := func(s tscout.CollectorOptStats) [3]string {
			format := func(o bpf.OptStats) string {
				return fmt.Sprintf("%d->%d", o.BeforeInsns, o.AfterInsns)
			}
			return [3]string{format(s.Begin), format(s.End), format(s.Features)}
		}
		fmt.Fprintf(&b, "%-18s %10s %10s %10s %8s\n", "subsystem", "begin", "end", "features", "saved")
		for _, sub := range tscout.AllSubsystems {
			cg := st.Codegen[sub]
			if !cg.Enabled {
				continue
			}
			cols := progCol(cg)
			fmt.Fprintf(&b, "%-18s %10s %10s %10s %8d\n",
				sub.String(), cols[0], cols[1], cols[2], cg.Saved())
		}
		fmt.Fprintf(&b, "total-insns-saved=%d\n", st.TotalInsnsSaved())
	}

	// Autopilot block only renders when a controller is attached: rates,
	// error horizons, and drift state per subsystem, plus the consumption
	// counters that show the retraining loop is actually fed.
	if st.Autopilot.Enabled {
		ap := st.Autopilot
		fmt.Fprintf(&b, "\nautopilot: epochs=%d refits=%d segments=%d points-consumed=%d\n",
			ap.Epochs, ap.Refits, ap.Segments, ap.PointsConsumed)
		fmt.Fprintf(&b, "%-18s %6s %12s %12s %8s %6s %10s\n",
			"subsystem", "rate%", "recent(us)", "baseline(us)", "drift", "events", "state")
		for _, sub := range tscout.AllSubsystems {
			ratio := 1.0
			if ap.BaselineErrUS[sub] > 0 {
				ratio = ap.RecentErrUS[sub] / ap.BaselineErrUS[sub]
			}
			state := "holding"
			if ap.Converged[sub] {
				state = "converged"
			} else if ratio >= 2 {
				state = "drifting"
			}
			rate := "-"
			if ap.Rates[sub] >= 0 {
				rate = fmt.Sprintf("%d", ap.Rates[sub])
			}
			fmt.Fprintf(&b, "%-18s %6s %12.2f %12.2f %8.2f %6d %10s\n",
				sub.String(), rate, ap.RecentErrUS[sub], ap.BaselineErrUS[sub],
				ratio, ap.DriftEvents[sub], state)
		}
	}

	// JIT dispatch only renders when compilation was attempted, mirroring
	// the codegen block. Each program cell shows its native run count, or
	// the decline reason for programs still on the interpreter.
	jit := false
	for i := range st.JIT {
		jit = jit || st.JIT[i].Enabled
	}
	if jit {
		fmt.Fprintf(&b, "\njit (native runs per program; interp:<reason> = declined):\n")
		progCell := func(p bpf.ProgramJITStats) string {
			if !p.Compiled {
				return "interp:" + p.DeclineReason
			}
			return fmt.Sprintf("%d", p.CompiledRuns)
		}
		fmt.Fprintf(&b, "%-18s %12s %12s %12s %8s\n", "subsystem", "begin", "end", "features", "faults")
		for _, sub := range tscout.AllSubsystems {
			js := st.JIT[sub]
			if !js.Enabled {
				continue
			}
			fmt.Fprintf(&b, "%-18s %12s %12s %12s %8d\n",
				sub.String(), progCell(js.Begin), progCell(js.End), progCell(js.Features),
				js.RuntimeFaults())
		}
		fmt.Fprintf(&b, "compiled-programs=%d\n", st.TotalCompiledPrograms())
	}
	return b.String()
}
