package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"tscout/internal/archive"
)

// archiveCmd implements `tsctl archive <inspect|export|verify> [flags] <file>`:
// the operator surface over a columnar training archive. It needs no server
// — the archive file is self-describing. Exit codes follow the analyze
// convention: 0 ok, 1 failure/corruption, 2 usage.
func archiveCmd(out, errOut io.Writer, args []string) int {
	if len(args) < 1 {
		fmt.Fprintln(errOut, "usage: tsctl archive inspect [-json] <file> | export -csv <file> | verify [-json] <file>")
		return 2
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "inspect", "export", "verify":
	default:
		fmt.Fprintf(errOut, "tsctl archive: unknown verb %q\n", verb)
		return 2
	}

	var jsonOut, csvOut bool
	var path string
	for _, a := range rest {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-csv", "--csv":
			csvOut = true
		default:
			if path != "" {
				fmt.Fprintf(errOut, "tsctl archive: unexpected argument %q\n", a)
				return 2
			}
			path = a
		}
	}
	if path == "" {
		fmt.Fprintln(errOut, "tsctl archive: no archive file given")
		return 2
	}

	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(errOut, "tsctl archive: %v\n", err)
		return 1
	}
	r, err := archive.NewReader(data)
	if err != nil {
		// A structurally broken archive is the finding `verify` exists to
		// report; for the other verbs it is still a hard failure.
		if verb == "verify" {
			return reportVerify(out, errOut, path, err, jsonOut)
		}
		fmt.Fprintf(errOut, "tsctl archive: %v\n", err)
		return 1
	}

	switch verb {
	case "inspect":
		if csvOut {
			fmt.Fprintln(errOut, "tsctl archive: -csv applies to export")
			return 2
		}
		return inspectArchive(out, errOut, r, jsonOut)
	case "export":
		if !csvOut {
			fmt.Fprintln(errOut, "usage: tsctl archive export -csv <file> (CSV is the only export format)")
			return 2
		}
		if _, err := archive.ExportCSV(r, out); err != nil {
			fmt.Fprintf(errOut, "tsctl archive: %v\n", err)
			return 1
		}
		return 0
	case "verify":
		if csvOut {
			fmt.Fprintln(errOut, "tsctl archive: -csv applies to export")
			return 2
		}
		return reportVerify(out, errOut, path, r.Verify(), jsonOut)
	default:
		panic("unreachable: verb validated above")
	}
}

func inspectArchive(out, errOut io.Writer, r *archive.Reader, jsonOut bool) int {
	st := r.Stats()
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fmt.Fprintf(errOut, "tsctl archive: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(out, "segments: %d\nblocks:   %d\nrows:     %d\nbytes:    %d", st.Segments, st.Blocks, st.Rows, st.Bytes)
	if st.Rows > 0 {
		fmt.Fprintf(out, " (%.1f bytes/row)", float64(st.Bytes)/float64(st.Rows))
	}
	fmt.Fprintln(out)
	for _, section := range []struct {
		title string
		rows  map[string]int64
	}{
		{"rows by operating unit", st.RowsByOU},
		{"rows by subsystem", st.RowsBySub},
	} {
		fmt.Fprintf(out, "\n%s:\n", section.title)
		names := make([]string, 0, len(section.rows))
		for n := range section.rows {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(out, "  %-20s %d\n", n, section.rows[n])
		}
	}
	return 0
}

// reportVerify renders a verification outcome (err == nil means clean) and
// maps it to the exit code: 0 clean, 1 corrupt.
func reportVerify(out, errOut io.Writer, path string, err error, jsonOut bool) int {
	if jsonOut {
		res := struct {
			File  string `json:"file"`
			OK    bool   `json:"ok"`
			Error string `json:"error,omitempty"`
		}{File: path, OK: err == nil}
		if err != nil {
			res.Error = err.Error()
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if eerr := enc.Encode(res); eerr != nil {
			fmt.Fprintf(errOut, "tsctl archive: %v\n", eerr)
			return 1
		}
	} else if err == nil {
		fmt.Fprintf(out, "%s: ok\n", path)
	} else {
		fmt.Fprintf(out, "%s: CORRUPT: %v\n", path, err)
	}
	if err != nil {
		return 1
	}
	return 0
}
