package main

import (
	"strings"
	"testing"

	"tscout/internal/bpf"
	"tscout/internal/tscout"
)

func TestFormatProcessorStatsLayout(t *testing.T) {
	var st tscout.ProcessorStats
	st.Polls = 7
	st.Parallelism = 2
	st.GlobalBudget = 256
	st.EffectiveBudget = 200
	st.FeedbackActions = 3
	st.FlushQueueDrops = 1
	st.PendingFlush = 4
	st.Processed = 1234
	st.Kernel[tscout.SubsystemExecutionEngine] = tscout.SubsystemStats{
		Submitted: 1500, Drained: 1400, Dropped: 100,
		DecodeErrors: 2, PaddedFeatures: 5, TruncatedFeatures: 6, Points: 1398,
	}
	st.User = tscout.SubsystemStats{Submitted: 50, Drained: 50, Points: 50}

	out := formatProcessorStats(st)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	// Header, one row per kernel subsystem, the user queue row, a blank
	// separator, and three footer lines.
	wantLines := 1 + len(tscout.AllSubsystems) + 1 + 1 + 3
	if len(lines) != wantLines {
		t.Fatalf("%d output lines, want %d:\n%s", len(lines), wantLines, out)
	}
	if !strings.HasPrefix(lines[0], "shard") || !strings.Contains(lines[0], "submitted") {
		t.Fatalf("header line: %q", lines[0])
	}

	// Every shard row starts with its name; the exec-engine row carries
	// the counters we set, in column order.
	execRow := ""
	for i, sub := range tscout.AllSubsystems {
		row := lines[1+i]
		if !strings.HasPrefix(row, sub.String()) {
			t.Fatalf("row %d = %q, want prefix %q", i, row, sub.String())
		}
		if sub == tscout.SubsystemExecutionEngine {
			execRow = row
		}
	}
	if fields := strings.Fields(execRow); len(fields) != 8 ||
		fields[1] != "1500" || fields[2] != "1400" || fields[3] != "100" ||
		fields[4] != "2" || fields[5] != "5" || fields[6] != "6" || fields[7] != "1398" {
		t.Fatalf("exec-engine row fields: %v", strings.Fields(execRow))
	}
	userRow := lines[1+len(tscout.AllSubsystems)]
	if !strings.HasPrefix(userRow, "user-queue") || !strings.Contains(userRow, "50") {
		t.Fatalf("user-queue row: %q", userRow)
	}

	// All shard rows align: equal widths up to the first counter column.
	if idx := strings.Index(lines[0], "submitted"); idx < 0 ||
		len(execRow) != len(userRow) {
		t.Fatalf("columns misaligned:\n%s", out)
	}

	footer := strings.Join(lines[len(lines)-3:], "\n")
	for _, want := range []string{
		"polls=7", "parallelism=2", "global-budget=256", "effective-budget=200",
		"feedback-actions=3", "flush-queue-drops=1", "pending-flush=4", "processed=1234",
		"drop-fraction=0.0",
	} {
		if !strings.Contains(footer, want) {
			t.Fatalf("footer missing %q:\n%s", want, footer)
		}
	}
}

func TestFormatProcessorStatsDropFraction(t *testing.T) {
	var st tscout.ProcessorStats
	st.Kernel[tscout.SubsystemExecutionEngine] = tscout.SubsystemStats{Submitted: 100, Dropped: 25}
	out := formatProcessorStats(st)
	if !strings.Contains(out, "drop-fraction=0.250") {
		t.Fatalf("drop fraction not rendered:\n%s", out)
	}
}

func TestFormatProcessorStatsPerCPUSection(t *testing.T) {
	var st tscout.ProcessorStats
	// Single-CPU snapshots keep the compact layout: per-ring telemetry
	// would only duplicate the shard aggregate.
	st.Rings[tscout.SubsystemExecutionEngine] = []bpf.RingStats{{Submitted: 10, Drained: 10}}
	if out := formatProcessorStats(st); strings.Contains(out, "per-cpu rings") {
		t.Fatalf("per-cpu section rendered for a single-CPU deployment:\n%s", out)
	}

	// Multi-CPU: only rings with traffic render, quiet ones are counted.
	st.Rings[tscout.SubsystemExecutionEngine] = []bpf.RingStats{
		{Submitted: 10, Drained: 8, Dropped: 2},
		{},
		{Submitted: 3, Drained: 3},
		{},
	}
	st.Rings[tscout.SubsystemDiskWriter] = []bpf.RingStats{{}, {}, {}, {}}
	out := formatProcessorStats(st)
	if !strings.Contains(out, "per-cpu rings") {
		t.Fatalf("per-cpu section missing:\n%s", out)
	}
	section := out[strings.Index(out, "per-cpu rings"):]
	rows := 0
	for _, line := range strings.Split(section, "\n") {
		if strings.HasPrefix(line, "execution-engine") {
			rows++
		}
		if strings.HasPrefix(line, "disk-writer") {
			t.Fatalf("quiet subsystem rendered a per-cpu row:\n%s", section)
		}
	}
	if rows != 2 {
		t.Fatalf("want 2 active exec-engine ring rows, got %d:\n%s", rows, section)
	}
	if !strings.Contains(section, "quiet-rings=6") {
		t.Fatalf("quiet-ring count missing or wrong:\n%s", section)
	}

	// Batch histogram renders once any bucket is nonzero, with the
	// bucket labels inline.
	if strings.Contains(out, "batch-size hist") {
		t.Fatalf("histogram rendered with all-zero buckets:\n%s", out)
	}
	st.BatchSizeHist[0] = 4
	st.BatchSizeHist[2] = 9
	out = formatProcessorStats(st)
	if !strings.Contains(out, "batch-size hist:") ||
		!strings.Contains(out, "1=4") || !strings.Contains(out, "5-16=9") {
		t.Fatalf("histogram section missing or mislabeled:\n%s", out)
	}
}

func TestFormatProcessorStatsResilienceSection(t *testing.T) {
	var st tscout.ProcessorStats
	// All resilience counters zero: the section must not render, keeping
	// the compact layout TestFormatProcessorStatsLayout pins down.
	if out := formatProcessorStats(st); strings.Contains(out, "resilience") {
		t.Fatalf("resilience section rendered for a healthy snapshot:\n%s", out)
	}

	st.Kernel[tscout.SubsystemExecutionEngine] = tscout.SubsystemStats{
		CorruptDiscards: 3,
		WrapClamps:      1,
		Orphans: tscout.OrphanCounts{
			BeginWithoutEnd: 4, EndWithoutBegin: 2,
			TornMigration: 5, StaleReaped: 6,
		},
	}
	st.Kernel[tscout.SubsystemLogSerializer] = tscout.SubsystemStats{
		Orphans: tscout.OrphanCounts{TornMigration: 1},
	}
	st.User = tscout.SubsystemStats{WrapClamps: 2}
	st.SinkRetries = 7
	st.SinkRetryDrops = 1
	st.PendingRetry = 9

	out := formatProcessorStats(st)
	if !strings.Contains(out, "resilience:") {
		t.Fatalf("resilience section missing:\n%s", out)
	}
	// Orphans aggregate across subsystems; wrap clamps across kernel
	// shards and the user queue.
	for _, want := range []string{
		"begin-no-end=4", "end-no-begin=2", "torn-migration=6", "stale-reaped=6",
		"corrupt-discards=3", "wrap-clamps=3",
		"sink-retries=7", "sink-retry-drops=1", "pending-retry=9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("resilience section missing %q:\n%s", want, out)
		}
	}
}

func TestFormatProcessorStatsCodegenSection(t *testing.T) {
	var st tscout.ProcessorStats
	// Disabled everywhere: the codegen section must not render, keeping
	// the compact layout the tests above pin down.
	if out := formatProcessorStats(st); strings.Contains(out, "codegen") {
		t.Fatalf("codegen section rendered with optimization off:\n%s", out)
	}
	st.Codegen[tscout.SubsystemExecutionEngine] = tscout.CollectorOptStats{
		Enabled:  true,
		Begin:    bpf.OptStats{BeforeInsns: 100, AfterInsns: 91},
		End:      bpf.OptStats{BeforeInsns: 150, AfterInsns: 141},
		Features: bpf.OptStats{BeforeInsns: 200, AfterInsns: 186},
	}
	out := formatProcessorStats(st)
	for _, want := range []string{
		"codegen insns", "100->91", "150->141", "200->186",
		"total-insns-saved=32",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("codegen section missing %q:\n%s", want, out)
		}
	}
	// Only subsystems with the optimizer enabled get a row.
	section := out[strings.Index(out, "codegen insns"):]
	if strings.Contains(section, "disk-writer") {
		t.Fatalf("codegen row rendered for subsystem without optimization:\n%s", section)
	}
}

func TestFormatProcessorStatsJITSection(t *testing.T) {
	var st tscout.ProcessorStats
	// Disabled everywhere: the JIT section must not render.
	if out := formatProcessorStats(st); strings.Contains(out, "jit") {
		t.Fatalf("jit section rendered with compilation off:\n%s", out)
	}
	st.JIT[tscout.SubsystemExecutionEngine] = tscout.CollectorJITStats{
		Enabled:  true,
		Begin:    bpf.ProgramJITStats{Attempted: true, Compiled: true, CompiledRuns: 42},
		End:      bpf.ProgramJITStats{Attempted: true, Compiled: true, CompiledRuns: 40},
		Features: bpf.ProgramJITStats{Attempted: true, DeclineReason: bpf.DeclineBackEdge, InterpRuns: 40},
	}
	out := formatProcessorStats(st)
	for _, want := range []string{
		"jit (native runs per program", "42", "40",
		"interp:" + bpf.DeclineBackEdge, "compiled-programs=2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("jit section missing %q:\n%s", want, out)
		}
	}
	section := out[strings.Index(out, "jit ("):]
	if strings.Contains(section, "disk-writer") {
		t.Fatalf("jit row rendered for subsystem without compilation:\n%s", section)
	}
}

func TestFormatProcessorStatsRuntimeFaults(t *testing.T) {
	var st tscout.ProcessorStats
	// Runtime faults alone must force the resilience section open and
	// render the unmistakable fault banner — this is the counter the old
	// Attach path silently discarded.
	st.Kernel[tscout.SubsystemNetworking] = tscout.SubsystemStats{RuntimeFaults: 3}
	out := formatProcessorStats(st)
	if !strings.Contains(out, "resilience:") {
		t.Fatalf("runtime faults did not open the resilience section:\n%s", out)
	}
	if !strings.Contains(out, "RUNTIME-FAULTS=3") {
		t.Fatalf("fault banner missing:\n%s", out)
	}
	// And a healthy snapshot must not mention it.
	if out := formatProcessorStats(tscout.ProcessorStats{}); strings.Contains(out, "RUNTIME-FAULTS") {
		t.Fatalf("fault banner rendered for healthy snapshot:\n%s", out)
	}
}
