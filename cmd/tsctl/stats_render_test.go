package main

import (
	"strings"
	"testing"

	"tscout/internal/bpf"
	"tscout/internal/tscout"
)

// fullyPopulatedStats builds a ProcessorStats snapshot that exercises every
// optional section of the renderer: per-CPU rings, batch histogram,
// resilience counters, codegen savings, and the JIT table with both native
// run counts and interpreter decline-reason cells.
func fullyPopulatedStats() tscout.ProcessorStats {
	var st tscout.ProcessorStats
	st.Polls = 12
	st.Parallelism = 4
	st.GlobalBudget = 512
	st.EffectiveBudget = 384
	st.Processed = 9000
	st.SinkRetries = 2
	st.SinkRetryDrops = 1
	for i := range st.Kernel {
		st.Kernel[i] = tscout.SubsystemStats{
			Submitted: int64(1000 * (i + 1)), Drained: int64(900 * (i + 1)),
			Dropped: int64(100 * (i + 1)), Points: int64(890 * (i + 1)),
			WrapClamps: int64(i),
		}
		st.Rings[i] = []bpf.RingStats{
			{Submitted: int64(100 + i), Drained: int64(90 + i), Dropped: int64(10 + i)},
			{}, // quiet ring: elided, counted in the footer
			{Submitted: int64(7 * (i + 1)), Drained: int64(7 * (i + 1))},
		}
		st.Codegen[i] = tscout.CollectorOptStats{
			Enabled:  true,
			Begin:    bpf.OptStats{BeforeInsns: 40 + i, AfterInsns: 30 + i},
			End:      bpf.OptStats{BeforeInsns: 60 + i, AfterInsns: 45 + i},
			Features: bpf.OptStats{BeforeInsns: 80 + i, AfterInsns: 70 + i},
		}
		st.JIT[i] = tscout.CollectorJITStats{
			Enabled: true,
			Begin:   bpf.ProgramJITStats{Attempted: true, Compiled: true, CompiledRuns: int64(500 * (i + 1))},
			End:     bpf.ProgramJITStats{Attempted: true, Compiled: true, CompiledRuns: int64(400 * (i + 1))},
			Features: bpf.ProgramJITStats{
				Attempted: true, Compiled: false,
				DeclineReason: "helper-out-of-range", InterpRuns: int64(300 * (i + 1)),
			},
		}
	}
	st.User = tscout.SubsystemStats{Submitted: 77, Drained: 77, Points: 77}
	st.BatchSizeHist = [tscout.BatchHistBuckets]int64{3, 8, 21, 5, 1, 0}
	st.Autopilot = tscout.AutopilotStats{
		Enabled: true, Epochs: 42, Refits: 7, PointsConsumed: 5000, Segments: 11,
		Rates:         [tscout.NumSubsystems]int{1, 100, 50, -1},
		RecentErrUS:   [tscout.NumSubsystems]float64{0.5, 9.0, 2.0, 0},
		BaselineErrUS: [tscout.NumSubsystems]float64{0.6, 3.0, 2.1, 0},
		DriftEvents:   [tscout.NumSubsystems]int64{0, 2, 0, 0},
		Converged:     [tscout.NumSubsystems]bool{true, false, false, false},
	}
	return st
}

// TestFormatProcessorStatsDeterministic pins the renderer's determinism:
// every table is backed by arrays or ordered slices (never raw map
// iteration), so rendering the same snapshot twice yields byte-identical
// output — the property the tsvet map-order rule enforces at compile time.
func TestFormatProcessorStatsDeterministic(t *testing.T) {
	st := fullyPopulatedStats()
	first := formatProcessorStats(st)
	for i := 0; i < 20; i++ {
		if got := formatProcessorStats(st); got != first {
			t.Fatalf("render %d differs from first render:\n--- first ---\n%s\n--- got ---\n%s", i, first, got)
		}
	}

	// The snapshot must actually have driven every optional section, or
	// the byte-compare proves less than it claims.
	for _, section := range []string{
		"per-cpu rings", "quiet-rings=", "batch-size hist:", "resilience:",
		"codegen insns", "total-insns-saved=", "jit (native runs",
		"interp:helper-out-of-range", "compiled-programs=",
		"autopilot: epochs=42", "converged", "drifting",
	} {
		if !strings.Contains(first, section) {
			t.Errorf("rendered stats missing section %q:\n%s", section, first)
		}
	}
}
