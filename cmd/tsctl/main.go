// Command tsctl inspects a TScout deployment: the registered OUs and
// their subsystems, the generated Collector programs (with disassembly),
// and the kernel tracepoints they attach to. It builds the same
// instrumented DBMS the benchmarks use, runs TScout's Setup Phase, and
// dumps what the Codegen produced — the artifacts a developer would audit
// before trusting kernel-space collection in production.
//
// Usage:
//
//	tsctl ous                   list operating units and subsystems
//	tsctl tracepoints           list kernel tracepoints
//	tsctl disasm <subsystem>    disassemble a Collector's three programs
//	                            (execution-engine, networking,
//	                             log-serializer, disk-writer)
//	tsctl stats                 run a short instrumented burst and print
//	                            the Processor pipeline's self-observed
//	                            telemetry (per-subsystem drain counters,
//	                            budgets, feedback actions, codegen savings)
//	tsctl vet                   verify, optimize, and lint every generated
//	                            Collector program across all subsystems and
//	                            resource masks; non-zero exit on any failure
//	tsctl analyze [-json] [dir ...]
//	                            run the tsvet static-analysis suite (wall
//	                            clock, map order, guarded-by, seeded
//	                            sources, discarded verify/run errors) over
//	                            the source tree; non-zero exit on findings
//	tsctl archive inspect [-json] <file>
//	                            summarize a columnar training archive:
//	                            segments, blocks, rows, bytes, row counts
//	                            per OU and subsystem
//	tsctl archive export -csv <file>
//	                            write the archive's rows as CSV to stdout
//	                            (byte-identical to a live CSVSink)
//	tsctl archive verify [-json] <file>
//	                            deep-check checksums, column encodings, and
//	                            zone maps; exit 1 on corruption
//	tsctl autopilot [-txns N] [-terminals N] [-seed N] [-report-every N]
//	                            run an instrumented TPC-C burst with the
//	                            online-retraining controller closed over the
//	                            pipeline, reporting live per-subsystem
//	                            sampling rates and prequential error as the
//	                            loop converges and throttles
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tscout/internal/dbms"
	"tscout/internal/tscout"
	"tscout/internal/wal"
	"tscout/internal/workload"
)

func main() {
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tsctl ous|tracepoints|disasm <subsystem>|stats|vet|analyze|archive|autopilot")
		os.Exit(2)
	}
	if flag.Arg(0) == "archive" {
		// archive inspects a self-describing segment file; no server needed.
		os.Exit(archiveCmd(os.Stdout, os.Stderr, flag.Args()[1:]))
	}
	if flag.Arg(0) == "vet" {
		// vet audits the Codegen output directly; it needs no server.
		os.Exit(vet(os.Stdout))
	}
	if flag.Arg(0) == "analyze" {
		// analyze audits the source tree; it needs no server either.
		os.Exit(analyze(os.Stdout, flag.Args()[1:]))
	}
	if flag.Arg(0) == "autopilot" {
		// autopilot builds its own archive-sinked server with the
		// controller attached; the default server below has neither.
		os.Exit(autopilotCmd(os.Stdout, os.Stderr, flag.Args()[1:]))
	}
	srv, err := dbms.NewServer(dbms.Config{
		Seed:       1,
		Instrument: true,
		WAL:        wal.Config{Synchronous: true},
	})
	if err != nil {
		// Collector verification failures arrive here wrapped with the
		// failing pc and instruction (describeVerifyError in codegen);
		// print them and exit non-zero rather than limping on.
		fmt.Fprintf(os.Stderr, "tsctl: %v\n", err)
		os.Exit(1)
	}

	switch flag.Arg(0) {
	case "ous":
		listOUs(srv)
	case "tracepoints":
		names := srv.Kernel.TracepointNames()
		sort.Strings(names)
		for _, n := range names {
			tp := srv.Kernel.Tracepoint(n)
			fmt.Printf("%-45s attached=%v\n", n, tp.Attached())
		}
	case "disasm":
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: tsctl disasm <subsystem>")
			os.Exit(2)
		}
		if err := disasm(srv, flag.Arg(1)); err != nil {
			fmt.Fprintf(os.Stderr, "tsctl: %v\n", err)
			os.Exit(1)
		}
	case "stats":
		if err := stats(srv); err != nil {
			fmt.Fprintf(os.Stderr, "tsctl: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "tsctl: unknown command %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

func listOUs(srv *dbms.Server) {
	type row struct {
		id   tscout.OUID
		name string
		sub  tscout.SubsystemID
		nf   int
	}
	var rows []row
	for id := tscout.OUID(0); id < 200; id++ {
		if def, ok := srv.TS.OU(id); ok {
			rows = append(rows, row{id, def.Name, def.Subsystem, len(def.Features)})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	fmt.Printf("%4s %-18s %-18s %s\n", "id", "operating unit", "subsystem", "features")
	for _, r := range rows {
		def, _ := srv.TS.OU(r.id)
		fmt.Printf("%4d %-18s %-18s %v\n", r.id, r.name, r.sub.String(), def.Features)
	}
}

// stats drives a short fully-sampled YCSB burst through the instrumented
// server and prints the Processor's self-observed pipeline telemetry: the
// per-subsystem drain-shard counters an operator would check to tell a
// healthy collector from a saturated one.
func stats(srv *dbms.Server) error {
	gen := &workload.YCSB{Records: 2000}
	if err := gen.Setup(srv); err != nil {
		return err
	}
	srv.TS.Sampler().SetAllRates(100)
	res, err := workload.Run(srv, gen, workload.Config{
		Terminals: 8, Transactions: 3000, Seed: 1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("burst: %d txns, %.0f txns/s, %d training points\n\n",
		res.Completed, res.ThroughputTPS, res.TrainingPoints)
	fmt.Print(formatProcessorStats(res.Processor))
	return nil
}

func disasm(srv *dbms.Server, subName string) error {
	var sub tscout.SubsystemID
	found := false
	for _, s := range tscout.AllSubsystems {
		if s.String() == subName {
			sub, found = s, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown subsystem %q", subName)
	}
	col := srv.TS.CollectorFor(sub)
	if col == nil {
		return fmt.Errorf("no Collector generated for %s", subName)
	}
	fmt.Printf("Collector for %s (resources: CPU=%v Disk=%v Network=%v)\n",
		subName, col.Resources.CPU, col.Resources.Disk, col.Resources.Network)
	for _, prog := range []struct {
		name string
		p    interface{ Disassemble() string }
	}{
		{"BEGIN", col.Begin.Program()},
		{"END", col.End.Program()},
		{"FEATURES", col.Features.Program()},
	} {
		fmt.Printf("\n--- %s ---\n%s", prog.name, prog.p.Disassemble())
	}
	return nil
}
