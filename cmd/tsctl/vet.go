package main

import (
	"errors"
	"fmt"
	"io"

	"tscout/internal/bpf"
	"tscout/internal/tscout"
)

// vet runs the Codegen audit: every subsystem × resource mask × marker
// program is generated, verified, optimized, and linted. Verification or
// optimization failures print the failing pc and instruction and make vet
// exit non-zero; lint findings are reported with pc, opcode, and
// provenance but only warnings on unoptimized output are informational —
// a finding that survives optimization means the optimizer missed its
// fixpoint and counts as an error too.
func vet(w io.Writer) int {
	var (
		programs     int
		verifyErrors int
		findings     int
		before       int
		after        int
	)
	for _, sub := range tscout.AllSubsystems {
		for mask := 0; mask < 16; mask++ {
			res := tscout.ResourceSet{
				CPU: mask&1 != 0, Memory: mask&2 != 0,
				Disk: mask&4 != 0, Network: mask&8 != 0,
			}
			for _, np := range tscout.CollectorPrograms(sub, res) {
				programs++
				prov := fmt.Sprintf("%s/%s cpu=%v mem=%v disk=%v net=%v",
					sub, np.Name, res.CPU, res.Memory, res.Disk, res.Network)
				if err := bpf.Verify(np.Prog, 0); err != nil {
					verifyErrors++
					fmt.Fprintf(w, "VERIFY FAIL %s: %s\n", prov, describeFailure(np.Prog, err))
					continue
				}
				opt, stats, err := bpf.Optimize(np.Prog, 0)
				if err != nil {
					verifyErrors++
					fmt.Fprintf(w, "OPTIMIZE FAIL %s: %s\n", prov, describeFailure(np.Prog, err))
					continue
				}
				before += stats.BeforeInsns
				after += stats.AfterInsns
				fs, err := bpf.Lint(opt, 0)
				if err != nil {
					verifyErrors++
					fmt.Fprintf(w, "LINT FAIL %s: %v\n", prov, err)
					continue
				}
				for _, f := range fs {
					findings++
					if f.PC >= 0 && f.PC < len(opt.Insns) {
						fmt.Fprintf(w, "%s: insn %d (%s): %s: %s: %s\n",
							prov, f.PC, opt.Insns[f.PC].String(), f.Severity, f.Rule, f.Message)
					} else {
						fmt.Fprintf(w, "%s: %s: %s: %s\n", prov, f.Severity, f.Rule, f.Message)
					}
				}
			}
		}
	}
	fmt.Fprintf(w, "vet: %d programs (%d subsystems x 16 resource masks x 3 markers)\n",
		programs, len(tscout.AllSubsystems))
	fmt.Fprintf(w, "vet: %d verify/optimize errors, %d residual lint findings\n",
		verifyErrors, findings)
	fmt.Fprintf(w, "vet: optimizer: %d insns -> %d (saved %d)\n", before, after, before-after)
	if verifyErrors > 0 || findings > 0 {
		return 1
	}
	return 0
}

// describeFailure renders a verification error with its failing instruction
// when the error names a pc.
func describeFailure(p *bpf.Program, err error) string {
	var ve *bpf.VerifyError
	if errors.As(err, &ve) && ve.PC >= 0 && ve.PC < len(p.Insns) {
		return fmt.Sprintf("failing insn %d: %s: %v", ve.PC, p.Insns[ve.PC].String(), err)
	}
	return err.Error()
}
