package main

import (
	"io"

	"tscout/internal/analysis"
)

// analyze runs the tsvet static-analysis suite (internal/analysis) over the
// given roots — the same gate `make lint` enforces, exposed on the operator
// CLI so a deployment checkout can be audited without make. args are passed
// through to the tsvet driver: [-json] [dir ...], default ".".
func analyze(out io.Writer, args []string) int {
	return analysis.Main(out, args)
}
