package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tscout/internal/archive"
	"tscout/internal/tscout"
)

// writeTestArchive seals a small archive to a temp file and returns its path.
func writeTestArchive(t *testing.T) string {
	t.Helper()
	pts := make([]tscout.TrainingPoint, 50)
	for i := range pts {
		pts[i] = tscout.TrainingPoint{
			OU: tscout.OUID(1 + i%2), OUName: []string{"scan", "sort"}[i%2],
			Subsystem: tscout.SubsystemID(i % 2), PID: 100 + i,
			Features:     []float64{float64(i), 0.5 * float64(i)},
			FeatureNames: []string{"rows", "width"},
			Metrics:      tscout.Metrics{ElapsedNS: int64(1000 + i), Cycles: uint64(i) * 3},
		}
	}
	var buf bytes.Buffer
	w := archive.NewWriterSize(&buf, 16)
	if err := w.WriteBatch(pts); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "train.tsg")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestArchiveCmdInspect(t *testing.T) {
	path := writeTestArchive(t)
	var out, errOut bytes.Buffer
	if code := archiveCmd(&out, &errOut, []string{"inspect", path}); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"rows:     50", "scan", "sort", "rows by subsystem"} {
		if !strings.Contains(text, want) {
			t.Errorf("inspect output missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if code := archiveCmd(&out, &errOut, []string{"inspect", "-json", path}); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var st archive.Stats
	if err := json.Unmarshal(out.Bytes(), &st); err != nil {
		t.Fatalf("inspect -json is not JSON: %v\n%s", err, out.String())
	}
	if st.Rows != 50 || st.RowsByOU["scan"] != 25 {
		t.Fatalf("inspect -json stats: %+v", st)
	}
}

func TestArchiveCmdExportCSV(t *testing.T) {
	path := writeTestArchive(t)
	var out, errOut bytes.Buffer
	if code := archiveCmd(&out, &errOut, []string{"export", "-csv", path}); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 51 { // header + 50 rows
		t.Fatalf("CSV export has %d lines, want 51", len(lines))
	}
	if !strings.HasPrefix(lines[0], "ou,ou_name,subsystem,pid,elapsed_ns") {
		t.Fatalf("CSV header: %q", lines[0])
	}

	// export without -csv is a usage error.
	if code := archiveCmd(&out, &errOut, []string{"export", path}); code != 2 {
		t.Fatalf("export without -csv: exit %d, want 2", code)
	}
}

func TestArchiveCmdVerify(t *testing.T) {
	path := writeTestArchive(t)
	var out, errOut bytes.Buffer
	if code := archiveCmd(&out, &errOut, []string{"verify", path}); code != 0 {
		t.Fatalf("clean archive: exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("verify output: %q", out.String())
	}

	// Flip one payload byte: verify must fail with exit 1, in both text
	// and JSON modes.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	bad := filepath.Join(t.TempDir(), "bad.tsg")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := archiveCmd(&out, &errOut, []string{"verify", bad}); code != 1 {
		t.Fatalf("corrupt archive: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "CORRUPT") {
		t.Fatalf("verify output: %q", out.String())
	}
	out.Reset()
	if code := archiveCmd(&out, &errOut, []string{"verify", "-json", bad}); code != 1 {
		t.Fatalf("corrupt archive -json: exit %d, want 1", code)
	}
	var res struct {
		OK    bool   `json:"ok"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("verify -json is not JSON: %v\n%s", err, out.String())
	}
	if res.OK || res.Error == "" {
		t.Fatalf("verify -json result: %+v", res)
	}
}

func TestArchiveCmdUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{},
		{"inspect"},
		{"frobnicate", "x"},
		{"inspect", "a", "b"},
	} {
		if code := archiveCmd(&out, &errOut, args); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
	// Missing file is a runtime failure, not a usage error.
	if code := archiveCmd(&out, &errOut, []string{"inspect", "/no/such/file"}); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
