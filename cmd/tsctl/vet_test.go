package main

import (
	"strings"
	"testing"
)

// TestVetClean is the acceptance gate: every generated Collector program
// must verify, optimize, and come out lint-clean, and the optimizer must
// save a nonzero number of instructions overall.
func TestVetClean(t *testing.T) {
	var b strings.Builder
	if code := vet(&b); code != 0 {
		t.Fatalf("vet exit code %d, want 0:\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"vet: 192 programs",
		"0 verify/optimize errors, 0 residual lint findings",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("vet output missing %q:\n%s", want, out)
		}
	}
	// The summary line carries the total savings; it must be positive.
	if strings.Contains(out, "(saved 0)") || !strings.Contains(out, "saved ") {
		t.Fatalf("vet reports no optimizer savings:\n%s", out)
	}
}
