package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"

	"tscout/internal/archive"
	"tscout/internal/autopilot"
	"tscout/internal/dbms"
	"tscout/internal/sim"
	"tscout/internal/tscout"
	"tscout/internal/wal"
	"tscout/internal/workload"
)

// autopilotCmd runs an instrumented TPC-C burst with the online-retraining
// controller closed over the collection pipeline and reports the loop
// live: one line per reporting interval showing each subsystem's sampling
// rate and prequential error horizons as the controller converges,
// throttles, and (if the error jumps) bursts. It ends with the full
// telemetry block, autopilot section included.
func autopilotCmd(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("autopilot", flag.ContinueOnError)
	fs.SetOutput(stderr)
	txns := fs.Int("txns", 4000, "transaction budget")
	terminals := fs.Int("terminals", 20, "concurrent clients")
	seed := fs.Int64("seed", 411, "run seed")
	every := fs.Int64("report-every", 50, "print a live line every N controller epochs")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var buf bytes.Buffer
	aw := archive.NewWriterSize(&buf, 512)
	srv, err := dbms.NewServer(dbms.Config{
		Seed:                 *seed,
		NoiseSigma:           0.04,
		Instrument:           true,
		Mode:                 tscout.KernelContinuous,
		DisableFeedback:      true,
		ProcessorParallelism: 1,
		Sink:                 aw,
		WAL:                  wal.Config{GroupSize: 32, FlushIntervalNS: 200_000},
	})
	if err != nil {
		fmt.Fprintf(stderr, "tsctl: %v\n", err)
		return 1
	}
	gen := &workload.TPCC{
		Warehouses: 4, CustomersPerDistrict: 20, Items: 200,
		InitialOrdersPerDistrict: 20,
	}
	if err := gen.Setup(srv); err != nil {
		fmt.Fprintf(stderr, "tsctl: %v\n", err)
		return 1
	}
	srv.TS.Sampler().SetAllRates(100)
	ctrl := autopilot.New(srv.TS, aw, autopilot.Config{
		HWContext:  []float64{sim.LargeHW.ClockGHz * 1000},
		MinSamples: 100,
	})

	fmt.Fprintf(stdout, "%8s %10s  %-18s %-40s\n",
		"epoch", "virt(ms)", "rates (ee/net/ls/dw)", "recent err us (ee/net/ls/dw)")
	inner := ctrl.Hook()
	var lastReport int64
	hook := func(nowNS int64) {
		inner(nowNS)
		st := ctrl.Stats()
		if st.Epochs-lastReport < *every {
			return
		}
		lastReport = st.Epochs
		fmt.Fprintf(stdout, "%8d %10.2f  %-18s %-40s\n",
			st.Epochs, float64(nowNS)/1e6, rateCells(st), errCells(st))
	}

	res, err := workload.Run(srv, gen, workload.Config{
		Terminals: *terminals, Transactions: *txns, Seed: *seed,
		FinalDrain: true, ProcessorPollNS: 25_000, OnDrain: hook,
	})
	if err != nil {
		fmt.Fprintf(stderr, "tsctl: %v\n", err)
		return 1
	}
	if err := aw.Flush(); err != nil {
		fmt.Fprintf(stderr, "tsctl: %v\n", err)
		return 1
	}
	ctrl.Tick()

	fmt.Fprintf(stdout, "\nrun: %d txns, %.0f txns/s, %d training points archived\n\n",
		res.Completed, res.ThroughputTPS, res.TrainingPoints)
	fmt.Fprint(stdout, formatProcessorStats(srv.TS.Processor().Stats()))
	return 0
}

func rateCells(st tscout.AutopilotStats) string {
	var b []byte
	for i, sub := range tscout.AllSubsystems {
		if i > 0 {
			b = append(b, '/')
		}
		if st.Rates[sub] < 0 {
			b = append(b, '-')
		} else {
			b = fmt.Appendf(b, "%d", st.Rates[sub])
		}
	}
	return string(b)
}

func errCells(st tscout.AutopilotStats) string {
	var b []byte
	for i, sub := range tscout.AllSubsystems {
		if i > 0 {
			b = append(b, '/')
		}
		b = fmt.Appendf(b, "%.2f", st.RecentErrUS[sub])
	}
	return string(b)
}
