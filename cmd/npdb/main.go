// Command npdb runs the NoisePage-like DBMS substrate as an interactive
// SQL shell on the simulated hardware. Statements execute through the full
// stack (wire protocol, parser, planner, MVCC, group-commit WAL), and each
// result reports the virtual time the statement cost.
//
// Usage:
//
//	npdb [-profile large|small] [-instrument] [-rate N]
//
// With -instrument, TScout collects training data for every statement; the
// special command \points prints the collected training points.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"tscout/internal/dbms"
	"tscout/internal/sim"
	"tscout/internal/tscout"
	"tscout/internal/wal"
)

func main() {
	profileName := flag.String("profile", "large", "hardware profile: large or small")
	instrument := flag.Bool("instrument", false, "deploy TScout (Kernel-Continuous)")
	rate := flag.Int("rate", 100, "sampling rate percent when instrumented")
	flag.Parse()

	profile := sim.LargeHW
	if *profileName == "small" {
		profile = sim.SmallHW
	}
	srv, err := dbms.NewServer(dbms.Config{
		Profile:    profile,
		Seed:       1,
		Instrument: *instrument,
		WAL:        wal.Config{Synchronous: true},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "npdb: %v\n", err)
		os.Exit(1)
	}
	if srv.TS != nil {
		srv.TS.Sampler().SetAllRates(*rate)
	}
	se := srv.NewSession()

	fmt.Printf("npdb — simulated %s (%d cores, %.1f GHz). End statements with Enter; \\q quits.\n",
		profile.Name, profile.Cores, profile.ClockGHz)
	fmt.Println("Try: CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(32)); INSERT INTO t VALUES (1, 'x'); SELECT * FROM t")
	fmt.Println(`Meta: \q quit, \points show collected training points, \tables list tables.`)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("npdb> ")
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q`:
			return
		case line == `\tables`:
			for _, n := range srv.Catalog.TableNames() {
				fmt.Println(" ", n)
			}
			continue
		case line == `\points`:
			if srv.TS == nil {
				fmt.Println("not instrumented (run with -instrument)")
				continue
			}
			srv.TS.Processor().Drain(tscout.DrainOptions{})
			pts := srv.TS.Processor().Points()
			fmt.Printf("%d training points\n", len(pts))
			for i, p := range pts {
				if i >= 20 {
					fmt.Println("  ... (truncated)")
					break
				}
				fmt.Printf("  %-16s %-18s features=%v elapsed=%dns\n",
					p.OUName, p.Subsystem.String(), p.Features, p.Metrics.ElapsedNS)
			}
			continue
		}

		before := se.Task.Now()
		res, err := se.Execute(line)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		elapsed := se.Task.Now() - before
		if len(res.Cols) == 0 {
			fmt.Printf("OK, %d row(s) affected  (%.1f us virtual)\n",
				res.Affected, float64(elapsed)/1000)
			continue
		}
		fmt.Println(strings.Join(res.Cols, "\t"))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
		fmt.Printf("(%d row(s), %.1f us virtual)\n", len(res.Rows), float64(elapsed)/1000)
	}
}
