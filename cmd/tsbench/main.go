// Command tsbench regenerates the paper's tables and figures against the
// simulated substrate and prints the rows/series each figure plots.
//
// Usage:
//
//	tsbench [-full] fig1|fig2|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|summary|ablations|frontier|all
//
// The default quick scale finishes in seconds per figure; -full uses the
// EXPERIMENTS.md scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tscout/internal/experiment"
)

func main() {
	full := flag.Bool("full", false, "run at the EXPERIMENTS.md scale (slower)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tsbench [-full] <figure>\n"+
			"figures: fig1 fig2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 summary ablations frontier all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	sc := experiment.Quick
	if *full {
		sc = experiment.Full
	}
	which := strings.ToLower(flag.Arg(0))
	if err := run(which, sc); err != nil {
		fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
		os.Exit(1)
	}
}

func run(which string, sc experiment.Scale) error {
	all := which == "all"
	did := false
	// Paper order, not map order: `tsbench all` must run (and print) the
	// figures in the same sequence every time.
	figures := []struct {
		name string
		fn   func(experiment.Scale) error
	}{
		{"fig1", fig1}, {"fig2", fig2}, {"fig5", fig5}, {"fig6", fig6},
		{"fig7", fig7}, {"fig8", fig8}, {"fig9", fig9}, {"fig10", fig10},
		{"fig11", fig11}, {"fig12", fig12}, {"summary", summary},
		{"ablations", ablations}, {"frontier", frontier},
	}
	for _, fig := range figures {
		name, fn := fig.name, fig.fn
		if all || which == name {
			did = true
			if err := fn(sc); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	if !did {
		return fmt.Errorf("unknown figure %q", which)
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func fig1(sc experiment.Scale) error {
	rows, err := experiment.Fig1(sc)
	if err != nil {
		return err
	}
	header("Figure 1: TPC-C p99 latency by collection method (1 client)")
	for _, r := range rows {
		fmt.Printf("%-14s %8.3f ms\n", r.Config, r.P99Ms)
	}
	return nil
}

func fig2(sc experiment.Scale) error {
	rows, err := experiment.Fig2(sc)
	if err != nil {
		return err
	}
	header("Figure 2: offline vs online training data (TPC-C, 20% template holdout)")
	printSubsystemRows(rows)
	return nil
}

func printSubsystemRows(rows []experiment.SubsystemRow) {
	fmt.Printf("%-14s %-18s %12s %12s %10s\n",
		"scenario", "subsystem", "offline(us)", "online(us)", "reduction")
	for _, r := range rows {
		fmt.Printf("%-14s %-18s %12.2f %12.2f %9.1f%%\n",
			r.Scenario, r.Subsystem.String(), r.OfflineUS, r.OnlineUS, r.ReductionPct)
	}
}

func fig56rows(sc experiment.Scale) ([]experiment.OverheadRow, error) {
	return experiment.Fig5and6(sc)
}

func fig5(sc experiment.Scale) error {
	rows, err := fig56rows(sc)
	if err != nil {
		return err
	}
	header("Figure 5: transaction throughput vs sampling rate (20 clients)")
	printOverhead(rows, func(r experiment.OverheadRow) float64 { return r.ThroughputTPS / 1000 }, "k txns/s")
	return nil
}

func fig6(sc experiment.Scale) error {
	rows, err := fig56rows(sc)
	if err != nil {
		return err
	}
	header("Figure 6: training-data generation vs sampling rate (20 clients)")
	printOverhead(rows, func(r experiment.OverheadRow) float64 { return r.SamplesPerSec / 1000 }, "k samples/s")
	fmt.Println("\nPipeline drop fraction (ring overwrite + queue overflow), from Processor telemetry:")
	printOverhead(rows, func(r experiment.OverheadRow) float64 { return r.Stats.DropFraction() * 100 }, "% dropped")
	return nil
}

func printOverhead(rows []experiment.OverheadRow, metric func(experiment.OverheadRow) float64, unit string) {
	// Group by workload, then mode; columns are rates.
	var rates []int
	seen := map[int]bool{}
	for _, r := range rows {
		if !seen[r.Rate] {
			seen[r.Rate] = true
			rates = append(rates, r.Rate)
		}
	}
	byKey := map[string]map[int]float64{}
	var order []string
	for _, r := range rows {
		k := fmt.Sprintf("%-12s %-17s", r.Workload, r.Mode)
		if byKey[k] == nil {
			byKey[k] = map[int]float64{}
			order = append(order, k)
		}
		byKey[k][r.Rate] = metric(r)
	}
	fmt.Printf("%-30s", "workload/mode \\ rate%")
	for _, rate := range rates {
		fmt.Printf(" %8d", rate)
	}
	fmt.Printf("   (%s)\n", unit)
	for _, k := range order {
		fmt.Printf("%-30s", k)
		for _, rate := range rates {
			fmt.Printf(" %8.1f", byKey[k][rate])
		}
		fmt.Println()
	}
}

func fig7(sc experiment.Scale) error {
	rows, err := experiment.Fig7(sc)
	if err != nil {
		return err
	}
	header("Figure 7: adapting to environment changes (hardware migration)")
	printSubsystemRows(rows)
	return nil
}

func fig8(sc experiment.Scale) error {
	rows, err := experiment.Fig8(sc)
	if err != nil {
		return err
	}
	header("Figure 8: adjustable sampling timeline (YCSB, 20 clients)")
	for _, r := range rows {
		fmt.Printf("%-22s %10.0f txns/s   points=%d drops=%d polls=%d\n",
			r.Phase, r.ThroughputTPS,
			r.Stats.Processed, r.Stats.TotalDropped(), r.Stats.Polls)
	}
	return nil
}

func printConvergence(rows []experiment.ConvergenceRow) {
	fmt.Printf("%-18s %10s %12s %12s\n", "subsystem", "data size", "offline(us)", "online(us)")
	for _, r := range rows {
		fmt.Printf("%-18s %10d %12.2f %12.2f\n",
			r.Subsystem.String(), r.DataSize, r.OfflineUS, r.OnlineUS)
	}
}

func fig9(sc experiment.Scale) error {
	rows, err := experiment.Fig9(sc)
	if err != nil {
		return err
	}
	header("Figure 9: model convergence (TPC-C)")
	printConvergence(rows)
	return nil
}

func fig10(sc experiment.Scale) error {
	rows, err := experiment.Fig10(sc)
	if err != nil {
		return err
	}
	header("Figure 10: model convergence (CH-benCHmark)")
	printConvergence(rows)
	return nil
}

func fig11(sc experiment.Scale) error {
	rows, err := experiment.Fig11(sc)
	if err != nil {
		return err
	}
	header("Figure 11: execution-engine improvement vs client count (TPC-C)")
	fmt.Printf("%10s %10s %12s %12s %10s\n", "terminals", "data size", "offline(us)", "online(us)", "reduction")
	for _, r := range rows {
		fmt.Printf("%10d %10d %12.2f %12.2f %9.1f%%\n",
			r.Terminals, r.DataSize, r.OfflineUS, r.OnlineUS, r.ReductionPct)
	}
	return nil
}

func fig12(sc experiment.Scale) error {
	rows, err := experiment.Fig12(sc)
	if err != nil {
		return err
	}
	header("Figure 12: model generalization across deployment scenarios")
	printSubsystemRows(rows)
	return nil
}

func ablations(sc experiment.Scale) error {
	noise, err := experiment.AblationNoise(sc)
	if err != nil {
		return err
	}
	header("Ablation: measurement-noise amplitude (log-serializer Fig. 2 effect)")
	fmt.Printf("%8s %14s %14s\n", "sigma", "offline(us)", "online(us)")
	for _, r := range noise {
		fmt.Printf("%8.2f %14.2f %14.2f\n", r.Sigma, r.LogSerOfflineUS, r.LogSerOnlineUS)
	}

	gc, err := experiment.AblationGroupCommit(sc)
	if err != nil {
		return err
	}
	header("Ablation: group-commit policy (TPC-C, 16 clients)")
	fmt.Printf("%10s %12s %14s %10s %14s\n",
		"group", "interval(us)", "k txns/s", "p99(us)", "recs/flush")
	for _, r := range gc {
		fmt.Printf("%10d %12d %14.1f %10d %14.1f\n",
			r.GroupSize, r.FlushIntervalUS, r.ThroughputTPS/1000, r.P99US, r.MeanBatchRecords)
	}

	sg, err := experiment.AblationSamplingGranularity(sc)
	if err != nil {
		return err
	}
	header("Ablation: sampling granularity (TPC-C, 16 clients)")
	for _, r := range sg {
		fmt.Printf("%-22s %10.0f txns/s  p99=%dus\n", r.Granularity, r.ThroughputTPS, r.P99US)
	}

	ec, err := experiment.AblationExternalCollection(sc)
	if err != nil {
		return err
	}
	header("Ablation: internal vs external feature collection (§2.2, TPC-C, 16 clients)")
	for _, r := range ec {
		fmt.Printf("%-26s %10.0f txns/s  p99=%dus\n", r.Strategy, r.ThroughputTPS, r.P99US)
	}
	return nil
}

func frontier(sc experiment.Scale) error {
	rows, err := experiment.Frontier(sc)
	if err != nil {
		return err
	}
	header("Error-vs-overhead frontier: fixed sampling vs autopilot (TPC-C, 20 clients)")
	fmt.Printf("%-12s %12s %10s %10s %12s %-16s %8s %6s\n",
		"policy", "k txns/s", "overhead", "rows", "error(us)", "final rates", "epochs", "drift")
	for _, r := range rows {
		fmt.Printf("%-12s %12.1f %9.2f%% %10d %12.2f %-16s %8d %6d\n",
			r.Policy, r.ThroughputTPS/1000, r.OverheadPct, r.TrainingRows,
			r.ErrorUS, fmt.Sprint(r.FinalRates), r.Epochs, r.DriftEvents)
	}
	return nil
}

func summary(experiment.Scale) error {
	s, err := experiment.Summary()
	if err != nil {
		return err
	}
	header("Section 6.2 headline claims")
	fmt.Printf("Kernel-Continuous overhead at 10%% sampling: %5.1f%%  (paper: ~7%%)\n",
		s.KernelOverheadPctAt10)
	fmt.Printf("Peak collection rate, kernel vs best user:  %5.1fx  (paper: ~3x)\n",
		s.KernelPeakSamplesPerSec/s.BestUserSamplesPerSec)
	fmt.Printf("  kernel peak:    %10.0f samples/s\n", s.KernelPeakSamplesPerSec)
	fmt.Printf("  best user-mode: %10.0f samples/s\n", s.BestUserSamplesPerSec)
	return nil
}
