module tscout

go 1.22
